(* Tests for the simulation substrate: time, RNG, distributions, the event
   heap and the discrete-event engine. *)

open Speedlight_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000 (Time.sec 1);
  Alcotest.(check int) "add" (Time.us 3) (Time.add (Time.us 1) (Time.us 2));
  Alcotest.(check int) "sub" (Time.us 1) (Time.sub (Time.us 3) (Time.us 2))

let test_time_float_conversions () =
  check_float "to_us" 1.5 (Time.to_us 1_500);
  check_float "to_ms" 0.5 (Time.to_ms 500_000);
  check_float "to_sec" 2.0 (Time.to_sec 2_000_000_000);
  Alcotest.(check int) "of_us_float rounds" 1_500 (Time.of_us_float 1.5);
  Alcotest.(check int) "of_ns_float rounds nearest" 3 (Time.of_ns_float 2.6)

let test_time_pp () =
  Alcotest.(check string) "ns" "999ns" (Time.to_string 999);
  Alcotest.(check string) "us" "1.50us" (Time.to_string 1_500);
  Alcotest.(check string) "ms" "2.000ms" (Time.to_string (Time.ms 2));
  Alcotest.(check string) "s" "1.000s" (Time.to_string (Time.sec 1))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues the same stream" xa xb

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.bits64 a) in
  let ys = List.init 50 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let test_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let hi = lo + span in
      let x = Rng.int_in rng lo hi in
      x >= lo && x <= hi)

let test_rng_unit_float_range =
  QCheck.Test.make ~name:"Rng.unit_float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.unit_float rng in
      x >= 0. && x < 1.)

let test_rng_uniformity () =
  (* Rough chi-square-free check: mean of many uniform draws near 0.5. *)
  let rng = Rng.create 99 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.unit_float rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(1 -- 20) int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never true" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli rng 1.)
  done

(* ------------------------------------------------------------------ *)
(* Dist *)

let sample_mean d seed n =
  let rng = Rng.create seed in
  Dist.mean_of d rng n

let test_dist_constant () =
  check_float "constant" 42. (sample_mean (Dist.constant 42.) 1 100)

let test_dist_exponential_mean () =
  let m = sample_mean (Dist.exponential ~mean:100.) 2 200_000 in
  Alcotest.(check bool) "exp mean ~100" true (Float.abs (m -. 100.) < 2.)

let test_dist_uniform_mean () =
  let m = sample_mean (Dist.uniform ~lo:10. ~hi:20.) 3 100_000 in
  Alcotest.(check bool) "uniform mean ~15" true (Float.abs (m -. 15.) < 0.1)

let test_dist_normal_mean_sigma () =
  let rng = Rng.create 4 in
  let d = Dist.normal ~mu:5. ~sigma:2. in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Dist.sample d rng) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int n
  in
  Alcotest.(check bool) "normal mean" true (Float.abs (mean -. 5.) < 0.05);
  Alcotest.(check bool) "normal sigma" true (Float.abs (sqrt var -. 2.) < 0.05)

let test_dist_normal_pos_nonneg =
  QCheck.Test.make ~name:"normal_pos never negative" ~count:1000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      Dist.sample (Dist.normal_pos ~mu:(-1.) ~sigma:3.) rng >= 0.)

let test_dist_lognormal_of_mean_cv () =
  let d = Dist.lognormal_of_mean_cv ~mean:1000. ~cv:0.5 in
  let m = sample_mean d 6 200_000 in
  Alcotest.(check bool) "lognormal real-space mean" true
    (Float.abs (m -. 1000.) < 15.)

let test_dist_pareto_minimum =
  QCheck.Test.make ~name:"pareto >= scale" ~count:1000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      Dist.sample (Dist.pareto ~scale:10. ~shape:1.5) rng >= 10.)

let test_dist_empirical_support () =
  let values = [| 1.; 2.; 3. |] in
  let rng = Rng.create 7 in
  let d = Dist.empirical values in
  for _ = 1 to 200 do
    let x = Dist.sample d rng in
    Alcotest.(check bool) "in support" true (Array.exists (fun v -> v = x) values)
  done

let test_dist_empirical_empty () =
  Alcotest.check_raises "empty empirical" (Invalid_argument "Dist.empirical: empty array")
    (fun () -> ignore (Dist.empirical [||]))

let test_dist_combinators () =
  let rng = Rng.create 8 in
  check_float "shifted" 52. (Dist.sample (Dist.shifted 10. (Dist.constant 42.)) rng);
  check_float "scaled" 84. (Dist.sample (Dist.scaled 2. (Dist.constant 42.)) rng);
  check_float "clamp_min" 50. (Dist.sample (Dist.clamp_min 50. (Dist.constant 42.)) rng)

let test_dist_mixture_weights () =
  let d = Dist.mixture [ (0.9, Dist.constant 1.); (0.1, Dist.constant 2.) ] in
  let rng = Rng.create 9 in
  let n = 50_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Dist.sample d rng = 1. then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "mixture weight respected" true (Float.abs (frac -. 0.9) < 0.01)

let test_dist_mixture_zero_weight_tail () =
  (* A zero-weight component is never selected, even as the structural
     fall-through of the sampling walk (regression: the walk fell
     through to the last listed component, so a trailing zero-weight
     entry could be sampled when rounding pushed the draw past the
     cumulative sum). *)
  let d =
    Dist.mixture
      [ (0.3, Dist.constant 1.); (0.7, Dist.constant 2.); (0., Dist.constant 99.) ]
  in
  let rng = Rng.create 17 in
  for _ = 1 to 100_000 do
    let x = Dist.sample d rng in
    if x = 99. then Alcotest.fail "zero-weight component was sampled"
  done;
  (* Same with the zero weight in the middle. *)
  let d =
    Dist.mixture
      [ (0.5, Dist.constant 1.); (0., Dist.constant 99.); (0.5, Dist.constant 2.) ]
  in
  for _ = 1 to 100_000 do
    if Dist.sample d rng = 99. then Alcotest.fail "zero-weight component was sampled"
  done

let test_dist_mixture_validation () =
  let invalid msg parts =
    match Dist.mixture parts with
    | _ -> Alcotest.failf "mixture accepted %s" msg
    | exception Invalid_argument _ -> ()
  in
  invalid "an empty list" [];
  invalid "a negative weight" [ (0.5, Dist.constant 1.); (-0.1, Dist.constant 2.) ];
  invalid "an all-zero total" [ (0., Dist.constant 1.); (0., Dist.constant 2.) ];
  invalid "a NaN total" [ (Float.nan, Dist.constant 1.) ]

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~key:5 ~seq:0 "five";
  Heap.push h ~key:1 ~seq:1 "one";
  Heap.push h ~key:3 ~seq:2 "three";
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek_key h);
  let pop_value () =
    match Heap.pop h with Some (_, _, v) -> v | None -> "EMPTY"
  in
  Alcotest.(check string) "min first" "one" (pop_value ());
  Alcotest.(check string) "then three" "three" (pop_value ());
  Alcotest.(check string) "then five" "five" (pop_value ());
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~key:7 ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> Alcotest.(check int) "FIFO among equal keys" i v
    | None -> Alcotest.fail "heap drained early"
  done

let test_heap_sorted_property =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 200) (int_range 0 1000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i k) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, _, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~key:1 ~seq:0 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Alcotest.(check (option int)) "no peek" None (Heap.peek_key h)

(* Model check: a random interleaving of pushes and pops, compared
   element-for-element against a list kept sorted by (key, seq). This
   exercises the FIFO tie-break among equal keys mid-stream (not just on
   final drain), growth from a tiny initial capacity, and reuse of the
   backing arrays across [clear]. *)
let test_heap_model_property =
  let cmp (k1, s1, _) (k2, s2, _) = compare (k1, s1) (k2, s2) in
  QCheck.Test.make ~name:"heap matches (key, seq)-sorted model under push/pop mix"
    ~count:300
    QCheck.(list_of_size Gen.(0 -- 300) (pair bool (int_range 0 50)))
    (fun ops ->
      let h = Heap.create ~capacity:2 () in
      let check_rounds round =
        let model = ref [] and seq = ref 0 and ok = ref true in
        List.iter
          (fun (is_push, k) ->
            if is_push then begin
              (* Perturb keys across rounds so a reused backing array with
                 stale contents would be caught. *)
              let k = k + round in
              Heap.push h ~key:k ~seq:!seq !seq;
              model := List.merge cmp !model [ (k, !seq, !seq) ];
              incr seq
            end
            else
              match (Heap.pop h, !model) with
              | None, [] -> ()
              | Some (k', s', v'), (k, s, v) :: rest
                when k' = k && s' = s && v' = v ->
                  model := rest
              | _ -> ok := false)
          ops;
        List.iter
          (fun (k, s, v) ->
            match Heap.pop h with
            | Some (k', s', v') when k' = k && s' = s && v' = v -> ()
            | _ -> ok := false)
          !model;
        let empty = Heap.is_empty h in
        Heap.clear h;
        !ok && empty
      in
      check_rounds 0 && check_rounds 1)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:30 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~at:10 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~at:20 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:100 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_reentrant_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:10 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule_after e ~delay:5 (fun () -> log := "b" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "handler-scheduled event runs" [ "a"; "b" ]
    (List.rev !log);
  Alcotest.(check int) "final clock" 15 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:10 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:100 (fun () -> ()));
  Engine.run e;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       ignore (Engine.schedule e ~at:50 (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (Engine.schedule_after e ~delay:(-1) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:10 (fun () -> log := 10 :: !log));
  ignore (Engine.schedule e ~at:20 (fun () -> log := 20 :: !log));
  ignore (Engine.schedule e ~at:30 (fun () -> log := 30 :: !log));
  Engine.run_until e 20;
  Alcotest.(check (list int)) "events up to deadline" [ 10; 20 ] (List.rev !log);
  Alcotest.(check int) "clock advanced to deadline" 20 (Engine.now e);
  Alcotest.(check int) "later event still pending" 1 (Engine.pending e);
  Engine.run_until e 25;
  Alcotest.(check int) "clock moves even without events" 25 (Engine.now e)

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  ignore (Engine.schedule e ~at:5 (fun () -> ()));
  Alcotest.(check bool) "step consumes" true (Engine.step e);
  Alcotest.(check bool) "then empty" false (Engine.step e)

(* Source-tagged events: at one instant the order is (source id,
   per-source sequence), regardless of the order the scheduling calls
   ran — the property the sharded backend relies on to make cross-shard
   handoff order-independent. Anonymous events sort after every tagged
   one. *)
let test_engine_src_priority () =
  let e = Engine.create () in
  let log = ref [] in
  let tag v = log := v :: !log in
  Engine.schedule_src_unit e ~src:2 ~at:10 (fun () -> tag "s2a");
  Engine.schedule_unit e ~at:10 (fun () -> tag "anon1");
  Engine.schedule_src_unit e ~src:0 ~at:10 (fun () -> tag "s0a");
  Engine.schedule_src_unit e ~src:2 ~at:10 (fun () -> tag "s2b");
  Engine.schedule_unit e ~at:10 (fun () -> tag "anon2");
  Engine.schedule_src_unit e ~src:1 ~at:10 (fun () -> tag "s1a");
  Engine.schedule_src_unit e ~src:0 ~at:10 (fun () -> tag "s0b");
  Engine.run e;
  Alcotest.(check (list string))
    "(src, per-src seq) order, anonymous last"
    [ "s0a"; "s0b"; "s1a"; "s2a"; "s2b"; "anon1"; "anon2" ]
    (List.rev !log)

(* The same source-tagged schedule, issued in two different call orders,
   executes identically — scheduling order is not observable. *)
let test_engine_src_call_order_independent () =
  let run order =
    let e = Engine.create () in
    let log = ref [] in
    List.iter
      (fun (src, name) ->
        Engine.schedule_src_unit e ~src ~at:50 (fun () -> log := name :: !log))
      order;
    Engine.run e;
    List.rev !log
  in
  let a = run [ (3, "x"); (1, "y"); (2, "z") ] in
  let b = run [ (2, "z"); (3, "x"); (1, "y") ] in
  Alcotest.(check (list string)) "same execution order" a b

let test_engine_src_earlier_time_wins () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_src_unit e ~src:0 ~at:20 (fun () -> log := "late-src0" :: !log);
  Engine.schedule_unit e ~at:10 (fun () -> log := "early-anon" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "time dominates source priority"
    [ "early-anon"; "late-src0" ] (List.rev !log)

let test_engine_run_until_excl () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:10 (fun () -> log := 10 :: !log));
  ignore (Engine.schedule e ~at:20 (fun () -> log := 20 :: !log));
  ignore (Engine.schedule e ~at:30 (fun () -> log := 30 :: !log));
  Engine.run_until_excl e 20;
  Alcotest.(check (list int)) "strictly before the bound" [ 10 ] (List.rev !log);
  Alcotest.(check int) "clock at last executed event, not the bound" 10
    (Engine.now e);
  Alcotest.(check (option int)) "bound event still pending" (Some 20)
    (Engine.next_key e);
  (* An arrival exactly at the previous bound is legal (not in the past),
     and being source-tagged it runs before the anonymous event already
     queued at the same instant. *)
  Engine.schedule_src_unit e ~src:5 ~at:20 (fun () -> log := 21 :: !log);
  Engine.run_until_excl e 31;
  Alcotest.(check (list int)) "rest in order" [ 10; 21; 20; 30 ] (List.rev !log);
  Engine.advance_clock e 40;
  Alcotest.(check int) "advance_clock pads forward" 40 (Engine.now e);
  Engine.advance_clock e 35;
  Alcotest.(check int) "advance_clock never goes backwards" 40 (Engine.now e)

(* ------------------------------------------------------------------ *)
(* Partition *)

(* A path graph 0-1-2-...-7: BFS-contiguous halves with the single cut
   edge in the middle. *)
let path_edges n w = List.init (n - 1) (fun i -> (i, i + 1, w i))

let test_partition_path () =
  let edges = path_edges 8 (fun _ -> 100) in
  let assign = Partition.compute ~n_nodes:8 ~edges ~parts:2 in
  Alcotest.(check (array int)) "contiguous halves" [| 0; 0; 0; 0; 1; 1; 1; 1 |] assign;
  Alcotest.(check int) "one cut edge" 1 (Partition.n_cross ~assign ~edges);
  Alcotest.(check (option int)) "lookahead = cut latency" (Some 100)
    (Partition.cross_lookahead ~assign ~edges)

let test_partition_balance () =
  (* 10 nodes over 4 parts: sizes 3/3/2/2, every part non-empty. *)
  let edges = path_edges 10 (fun _ -> 1) in
  let assign = Partition.compute ~n_nodes:10 ~edges ~parts:4 in
  let sizes = Array.make 4 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) assign;
  Alcotest.(check (array int)) "balanced sizes" [| 3; 3; 2; 2 |] sizes

let test_partition_clamp () =
  let edges = path_edges 3 (fun _ -> 1) in
  let assign = Partition.compute ~n_nodes:3 ~edges ~parts:8 in
  Alcotest.(check int) "parts clamped to nodes" 2
    (Array.fold_left Stdlib.max 0 assign);
  Alcotest.(check (option int)) "single part has no cut" None
    (Partition.cross_lookahead
       ~assign:(Partition.compute ~n_nodes:3 ~edges ~parts:1)
       ~edges)

let test_partition_min_cut_weight () =
  let edges = [ (0, 1, 50); (1, 2, 7); (2, 3, 50) ] in
  let assign = [| 0; 0; 1; 1 |] in
  Alcotest.(check (option int)) "min weight over the cut" (Some 7)
    (Partition.cross_lookahead ~assign ~edges)

let test_partition_deterministic () =
  let edges =
    [ (0, 1, 3); (1, 2, 4); (2, 3, 5); (3, 0, 6); (1, 3, 7); (4, 5, 8); (5, 0, 9) ]
  in
  let a = Partition.compute ~n_nodes:6 ~edges ~parts:3 in
  let b = Partition.compute ~n_nodes:6 ~edges ~parts:3 in
  Alcotest.(check (array int)) "pure function of the graph" a b

(* Topology-shaped edge lists for the refinement properties: a 2x4
   leaf-spine, a k=4 fat tree's switch graph, and a pseudo-random
   graph from a hand-rolled LCG (no [Random]: tests must be
   deterministic). Weights vary so refinement has something to
   optimize. *)
let leaf_spine_edges =
  (* spines 0-1, leaves 2-5, full bipartite leaf-spine mesh. *)
  List.concat_map (fun s -> List.init 4 (fun l -> (s, 2 + l, 10 + s + l))) [ 0; 1 ]

let fat_tree_edges =
  (* k=4: 4 cores (0-3), 8 aggs (4-11), 8 edges (12-19). Pod p has aggs
     {4+2p, 5+2p} and edge switches {12+2p, 13+2p}; agg i connects to
     cores sharing its index parity group. *)
  let pods = [ 0; 1; 2; 3 ] in
  let core_links =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun a ->
            List.init 2 (fun c -> (4 + (2 * p) + a, (2 * a) + c, 7 + a + c)))
          [ 0; 1 ])
      pods
  in
  let pod_links =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun a -> List.init 2 (fun e -> (4 + (2 * p) + a, 12 + (2 * p) + e, 3 + e)))
          [ 0; 1 ])
      pods
  in
  core_links @ pod_links

let random_edges ~n ~m ~seed =
  let state = ref seed in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  List.init m (fun _ ->
      let u = next n in
      let v = (u + 1 + next (n - 1)) mod n in
      (u, v, 1 + next 20))

let check_refined ~name ~n_nodes ~edges ~parts =
  let seed = Partition.compute ~n_nodes ~edges ~parts in
  let refined = Partition.compute_refined ~n_nodes ~edges ~parts in
  let eff = 1 + Array.fold_left Stdlib.max 0 refined in
  let sizes = Array.make eff 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) refined;
  Array.iteri
    (fun p s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: part %d non-empty" name p)
        true (s > 0))
    sizes;
  Alcotest.(check bool)
    (Printf.sprintf "%s: refined cut weight <= BFS seed" name)
    true
    (Partition.cut_weight ~assign:refined ~edges
    <= Partition.cut_weight ~assign:seed ~edges);
  Alcotest.(check (array int))
    (Printf.sprintf "%s: deterministic" name)
    refined
    (Partition.compute_refined ~n_nodes ~edges ~parts)

let test_partition_refined_properties () =
  List.iter
    (fun parts ->
      check_refined ~name:"leaf-spine" ~n_nodes:6 ~edges:leaf_spine_edges ~parts;
      check_refined ~name:"fat-tree" ~n_nodes:20 ~edges:fat_tree_edges ~parts;
      List.iter
        (fun s ->
          check_refined
            ~name:(Printf.sprintf "random/%d" s)
            ~n_nodes:24
            ~edges:(random_edges ~n:24 ~m:60 ~seed:s)
            ~parts)
        [ 1; 2; 3 ])
    [ 2; 3; 4; 8 ]

let test_partition_quality_report () =
  let edges = fat_tree_edges in
  let assign = Partition.compute_refined ~n_nodes:20 ~edges ~parts:4 in
  let r = Partition.quality ~n_nodes:20 ~edges ~parts:4 ~assign in
  Alcotest.(check int) "parts" 4 r.Partition.parts;
  Alcotest.(check int) "sizes cover all nodes" 20
    (Array.fold_left ( + ) 0 r.Partition.sizes);
  Alcotest.(check int) "cut edges match n_cross" (Partition.n_cross ~assign ~edges)
    r.Partition.cut_edges;
  Alcotest.(check int) "cut weight matches" (Partition.cut_weight ~assign ~edges)
    r.Partition.cut_weight;
  Alcotest.(check bool) "refined no worse than seed" true
    (r.Partition.cut_weight <= r.Partition.seed_cut_weight)

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let mb = Mailbox.create () in
  Alcotest.(check bool) "fresh is empty" true (Mailbox.is_empty mb);
  for i = 1 to 5 do
    Mailbox.push mb i
  done;
  Alcotest.(check int) "length" 5 (Mailbox.length mb);
  let out = ref [] in
  Mailbox.drain mb (fun v -> out := v :: !out);
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5 ] (List.rev !out);
  Alcotest.(check bool) "drained" true (Mailbox.is_empty mb);
  (* Reusable after a drain. *)
  Mailbox.push mb 42;
  let out = ref [] in
  Mailbox.drain mb (fun v -> out := v :: !out);
  Alcotest.(check (list int)) "reusable" [ 42 ] !out

let test_mailbox_multichunk () =
  (* Well past one 256-slot chunk, twice, to exercise the chunk chain
     and the freelist reuse path. *)
  let mb = Mailbox.create () in
  let n = 1000 in
  for round = 1 to 2 do
    for i = 1 to n do
      Mailbox.push mb ((round * n) + i)
    done;
    Alcotest.(check int) "length spans chunks" n (Mailbox.length mb);
    let out = ref [] in
    Mailbox.drain mb (fun v -> out := v :: !out);
    Alcotest.(check (list int))
      (Printf.sprintf "round %d FIFO across chunks" round)
      (List.init n (fun i -> (round * n) + i + 1))
      (List.rev !out);
    Alcotest.(check bool) "empty after drain" true (Mailbox.is_empty mb)
  done

(* ------------------------------------------------------------------ *)
(* Calq (calendar/ladder event queue) *)

(* Differential oracle: drive a Calq (with a tiny activation threshold,
   so calendar mode engages and collapses repeatedly) and a plain Heap
   with the same operation stream, and require identical pop streams.
   The key mix has a dense near band, same-key FIFO ties and far
   outliers — the shapes calendar bucketing can get wrong. *)
let test_calq_matches_heap () =
  let calq = Calq.create ~activate:32 () in
  let heap = Heap.create () in
  let state = ref 42 in
  let next bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let seq = ref 0 in
  let push key =
    incr seq;
    Calq.push calq ~key ~seq:!seq key;
    Heap.push heap ~key ~seq:!seq key
  in
  let check_pop i =
    match (Calq.pop calq, Heap.pop heap) with
    | Some (ck, cs, cv), Some (hk, hs, hv) ->
        if ck <> hk || cs <> hs || cv <> hv then
          Alcotest.failf "pop %d: calq (%d,%d,%d) <> heap (%d,%d,%d)" i ck cs
            cv hk hs hv
    | None, None -> ()
    | Some _, None -> Alcotest.failf "pop %d: calq non-empty, heap empty" i
    | None, Some _ -> Alcotest.failf "pop %d: heap non-empty, calq empty" i
  in
  let base = ref 0 in
  for i = 0 to 9_999 do
    (* Mostly near-future keys on an advancing front, some exact ties,
       and an occasional far outlier (schedules like retransmit timers). *)
    let key =
      match next 10 with
      | 0 -> !base + 1_000_000 + next 1_000_000
      | 1 -> !base + 1
      | _ -> !base + next 500
    in
    push key;
    (* Interleave pops so the population repeatedly crosses the
       activation and collapse thresholds in both directions. *)
    if next 3 = 0 then begin
      check_pop i;
      (match Calq.peek_key calq with Some k -> base := k | None -> ());
      Alcotest.(check int)
        (Printf.sprintf "length agrees at %d" i)
        (Heap.length heap) (Calq.length calq)
    end
  done;
  let i = ref 0 in
  while not (Calq.is_empty calq) || not (Heap.is_empty heap) do
    incr i;
    check_pop (10_000 + !i)
  done

let test_calq_top_accessors () =
  let q = Calq.create ~activate:16 () in
  for i = 0 to 99 do
    Calq.push q ~key:(1000 - (i * 7)) ~seq:i i
  done;
  Alcotest.(check int) "top_key" (Calq.top_key q) 307;
  Alcotest.(check int) "top_seq" 99 (Calq.top_seq q);
  Alcotest.(check int) "top_val" 99 (Calq.top_val q);
  Alcotest.(check (option int)) "peek_key" (Some 307) (Calq.peek_key q);
  Calq.drop_top q;
  Alcotest.(check int) "next after drop" 314 (Calq.top_key q);
  Alcotest.(check int) "pop_top returns value" 98 (Calq.pop_top q);
  Alcotest.(check int) "length tracks" 98 (Calq.length q);
  Calq.clear q;
  Alcotest.(check bool) "clear empties" true (Calq.is_empty q);
  Calq.push q ~key:5 ~seq:1 50;
  Alcotest.(check (option int)) "usable after clear" (Some 5) (Calq.peek_key q)

(* ------------------------------------------------------------------ *)
(* Shard *)

(* Two engines exchanging ping-pong messages through mailboxes under
   Shard.run_until: every cross-shard message lands one lookahead later,
   and a global action runs between epochs with both shards quiesced. *)
let test_shard_ping_pong () =
  let engines = [| Engine.create (); Engine.create () |] in
  let boxes = [| Mailbox.create (); Mailbox.create () |] in
  let log = ref [] in
  let lookahead = 10 in
  (* [send ~from_shard v] delivers [v] to the other shard's log one
     lookahead later, via its mailbox. *)
  let rec deliver shard (at, v) =
    Engine.schedule_src_unit engines.(shard) ~src:1 ~at (fun () ->
        log := (shard, at, v) :: !log;
        if v < 6 then send ~from_shard:shard (v + 1))
  and send ~from_shard v =
    let dst = 1 - from_shard in
    let at = Engine.now engines.(from_shard) + lookahead in
    Mailbox.push boxes.(dst) (at, v)
  in
  deliver 0 (0, 0);
  let globals = ref [ 25 ] in
  let global_ran = ref [] in
  ignore
    (Shard.run_until ~engines
       ~lookahead:(Shard.Lookahead.uniform ~n:2 lookahead)
       ~deadline:100
       ~drain:(fun i -> Mailbox.drain boxes.(i) (fun m -> deliver i m))
    ~next_global:(fun () -> match !globals with [] -> None | t :: _ -> Some t)
    ~run_global:(fun () ->
      match !globals with
      | t :: rest ->
          globals := rest;
          (* Both shards are parked and their clocks advanced to [t]. *)
          global_ran := (t, Engine.now engines.(0), Engine.now engines.(1)) :: !global_ran
      | [] -> assert false)
       ());
  Alcotest.(check (list (triple int int int)))
    "hops alternate shards, one lookahead apart"
    [ (0, 0, 0); (1, 10, 1); (0, 20, 2); (1, 30, 3); (0, 40, 4); (1, 50, 5); (0, 60, 6) ]
    (List.rev !log);
  Alcotest.(check (list (triple int int int)))
    "global ran once with both clocks at its instant" [ (25, 25, 25) ] !global_ran;
  Alcotest.(check int) "clock 0 padded to deadline" 100 (Engine.now engines.(0));
  Alcotest.(check int) "clock 1 padded to deadline" 100 (Engine.now engines.(1))

let test_shard_error_propagates () =
  let engines = [| Engine.create (); Engine.create () |] in
  Engine.schedule_unit engines.(1) ~at:5 (fun () -> failwith "boom");
  Alcotest.check_raises "worker exception reaches the caller"
    (Failure "boom")
    (fun () ->
      ignore
        (Shard.run_until ~engines
           ~lookahead:(Shard.Lookahead.uniform ~n:2 1)
           ~deadline:10
           ~drain:(fun _ -> ())
           ~next_global:(fun () -> None)
           ~run_global:(fun () -> ())
           ()))

let test_shard_lookahead_required () =
  Alcotest.(check bool) "zero lookahead rejected" true
    (try
       ignore (Shard.Lookahead.uniform ~n:1 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pool: exception propagation *)

exception Task_boom of int

let test_pool_results_in_task_order () =
  let tasks = Array.init 16 (fun i () -> i * i) in
  Alcotest.(check (array int))
    "results indexed by task" (Array.map (fun f -> f ()) tasks)
    (Pool.run ~domains:4 tasks)

let test_pool_propagates_task_exception () =
  (* The real exception (payload included) must surface in the caller,
     not an anonymous "task produced no result". *)
  let ran = Array.make 8 false in
  let tasks =
    Array.init 8 (fun i () ->
        ran.(i) <- true;
        if i = 5 then raise (Task_boom i);
        i)
  in
  (match Pool.run ~domains:4 tasks with
  | exception Task_boom i -> Alcotest.(check int) "failing task's payload" 5 i
  | exception e ->
      Alcotest.failf "expected Task_boom, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "failing task must raise");
  (* Remaining tasks still ran — one failure does not starve the rest. *)
  Alcotest.(check (array bool)) "every task executed" (Array.make 8 true) ran

let test_pool_first_failure_in_task_order () =
  (* Two failing tasks: which exception wins must not depend on domain
     scheduling — always the lowest task index. *)
  for domains = 2 to 4 do
    let tasks =
      Array.init 12 (fun i () -> if i = 3 || i = 9 then raise (Task_boom i) else i)
    in
    match Pool.run ~domains tasks with
    | exception Task_boom i ->
        Alcotest.(check int)
          (Printf.sprintf "first failure at %d domains" domains)
          3 i
    | exception e ->
        Alcotest.failf "expected Task_boom, got %s" (Printexc.to_string e)
    | _ -> Alcotest.fail "failing tasks must raise"
  done

let test_pool_sequential_exception () =
  (* domains:1 takes the no-spawn path; same observable contract. *)
  let tasks = Array.init 4 (fun i () -> if i = 2 then raise (Task_boom i) else i) in
  match Pool.run ~domains:1 tasks with
  | exception Task_boom i -> Alcotest.(check int) "payload" 2 i
  | exception e -> Alcotest.failf "expected Task_boom, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "failing task must raise"

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "float conversions" `Quick test_time_float_conversions;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          q test_rng_int_bounds;
          q test_rng_int_in_bounds;
          q test_rng_unit_float_range;
          q test_rng_shuffle_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "constant" `Quick test_dist_constant;
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "uniform mean" `Quick test_dist_uniform_mean;
          Alcotest.test_case "normal moments" `Quick test_dist_normal_mean_sigma;
          Alcotest.test_case "lognormal mean/cv" `Quick test_dist_lognormal_of_mean_cv;
          Alcotest.test_case "empirical support" `Quick test_dist_empirical_support;
          Alcotest.test_case "empirical empty" `Quick test_dist_empirical_empty;
          Alcotest.test_case "combinators" `Quick test_dist_combinators;
          Alcotest.test_case "mixture weights" `Quick test_dist_mixture_weights;
          Alcotest.test_case "mixture zero-weight tail" `Quick
            test_dist_mixture_zero_weight_tail;
          Alcotest.test_case "mixture validation" `Quick
            test_dist_mixture_validation;
          q test_dist_normal_pos_nonneg;
          q test_dist_pareto_minimum;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          q test_heap_sorted_property;
          q test_heap_model_property;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "re-entrant" `Quick test_engine_reentrant_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "src priority" `Quick test_engine_src_priority;
          Alcotest.test_case "src call-order independence" `Quick
            test_engine_src_call_order_independent;
          Alcotest.test_case "src vs time" `Quick test_engine_src_earlier_time_wins;
          Alcotest.test_case "run_until_excl" `Quick test_engine_run_until_excl;
        ] );
      ( "partition",
        [
          Alcotest.test_case "path halves" `Quick test_partition_path;
          Alcotest.test_case "balance" `Quick test_partition_balance;
          Alcotest.test_case "clamp" `Quick test_partition_clamp;
          Alcotest.test_case "min cut weight" `Quick test_partition_min_cut_weight;
          Alcotest.test_case "deterministic" `Quick test_partition_deterministic;
          Alcotest.test_case "refined properties" `Quick
            test_partition_refined_properties;
          Alcotest.test_case "quality report" `Quick test_partition_quality_report;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "multi-chunk fifo" `Quick test_mailbox_multichunk;
        ] );
      ( "calq",
        [
          Alcotest.test_case "matches heap" `Quick test_calq_matches_heap;
          Alcotest.test_case "top accessors" `Quick test_calq_top_accessors;
        ] );
      ( "shard",
        [
          Alcotest.test_case "ping-pong epochs" `Quick test_shard_ping_pong;
          Alcotest.test_case "error propagation" `Quick test_shard_error_propagates;
          Alcotest.test_case "lookahead required" `Quick test_shard_lookahead_required;
        ] );
      ( "pool",
        [
          Alcotest.test_case "results in task order" `Quick
            test_pool_results_in_task_order;
          Alcotest.test_case "propagates task exception" `Quick
            test_pool_propagates_task_exception;
          Alcotest.test_case "first failure in task order" `Quick
            test_pool_first_failure_in_task_order;
          Alcotest.test_case "sequential exception path" `Quick
            test_pool_sequential_exception;
        ] );
    ]

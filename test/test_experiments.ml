(* Smoke tests of the experiment harnesses: each must run (at reduced
   size), produce structurally sane results, and print without error.
   Full-scale reproduction numbers are recorded in EXPERIMENTS.md. *)

open Speedlight_stats
open Speedlight_experiments

let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_table1 () =
  let rows = Table1.run () in
  Alcotest.(check int) "three variants" 3 (List.length rows);
  Table1.print null_fmt rows

let test_fig10_shape () =
  let r = Fig10.run ~quick:true () in
  Alcotest.(check int) "five port counts" 5 (List.length r);
  (* Rate must decrease with port count (~1/ports). *)
  let rates = List.map (fun p -> p.Fig10.max_rate_hz) r in
  let rec decreasing = function
    | a :: b :: rest -> a > b && decreasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "monotone decreasing" true (decreasing rates);
  (* Paper: >70 Hz at 64 ports. *)
  let at64 = List.nth rates 4 in
  Alcotest.(check bool) "at 64 ports near paper (>50 Hz)" true (at64 > 50.);
  Fig10.print null_fmt r

let test_fig11_shape () =
  let r = Fig11.run ~quick:true () in
  Alcotest.(check int) "seven sizes" 7 (List.length r);
  let first = List.hd r and last = List.nth r (List.length r - 1) in
  Alcotest.(check bool) "grows with size" true
    (last.Fig11.avg_sync_us > first.Fig11.avg_sync_us);
  Alcotest.(check bool) "under 120us at 10k routers" true
    (last.Fig11.avg_sync_us < 120.);
  Alcotest.(check bool) "over 5us at 10 routers" true (first.Fig11.avg_sync_us > 5.);
  Fig11.print null_fmt r

let test_fig9_shape () =
  let r = Fig9.run ~quick:true () in
  (* Snapshots must beat polling by orders of magnitude. *)
  Alcotest.(check bool) "snapshot sync well under polling" true
    (Cdf.median r.Fig9.no_cs *. 50. < Cdf.median r.Fig9.polling);
  Alcotest.(check bool) "polling in the milliseconds" true
    (Cdf.median r.Fig9.polling > 1_000.);
  Alcotest.(check bool) "no-CS median in single-digit us" true
    (Cdf.median r.Fig9.no_cs > 1. && Cdf.median r.Fig9.no_cs < 20.);
  Alcotest.(check bool) "channel state has a longer tail" true
    (Cdf.max r.Fig9.with_cs >= Cdf.max r.Fig9.no_cs);
  Fig9.print null_fmt r

(* The parallel-trials contract: every trial is seeded and self-contained,
   so the figure must come out bit-identical no matter how many domains
   execute it. *)
let test_fig9_domain_determinism () =
  let with_domains n f =
    let prev = Speedlight_sim.Pool.default_domains () in
    Speedlight_sim.Pool.set_default_domains n;
    Fun.protect ~finally:(fun () -> Speedlight_sim.Pool.set_default_domains prev) f
  in
  let r1 = with_domains 1 (fun () -> Fig9.run ~quick:true ()) in
  let r4 = with_domains 4 (fun () -> Fig9.run ~quick:true ()) in
  Alcotest.(check bool) "1-domain and 4-domain runs bit-identical" true (r1 = r4)

(* The sharded-simulation contract (DESIGN.md "Parallel simulation"): for
   a fixed seed, partitioning the switch graph across domains must change
   nothing observable — same packet counts, same snapshot reports, byte
   for byte. Exercised on the fig9 testbed topology with real traffic,
   auto-exclusion as a global action, and the full snapshot protocol. *)
let sharded_testbed_digest ~shards ~seed =
  let open Speedlight_sim in
  let open Speedlight_net in
  let open Speedlight_topology in
  let open Speedlight_workload in
  let cfg = Config.default |> Config.with_seed seed in
  let host_link, fabric_link = Common.testbed_links ~scaled:true in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let net = Net.create ~cfg ~shards ls.Topology.topo in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ls.Topology.host_of_server in
  Apps.Uniform.run ~engine ~rng ~send:(Common.sender net) ~fids ~hosts
    ~rate_pps:20_000. ~pkt_size:1500 ~until:(Time.ms 40);
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let sids =
    Common.take_snapshots net ~start:(Time.ms 20) ~interval:(Time.ms 6) ~count:5
      ~run_until:(Time.ms 90)
  in
  (Common.run_digest net ~sids, Net.n_shards net)

let test_sharded_equivalence () =
  let d1, n1 = sharded_testbed_digest ~shards:1 ~seed:7 in
  let d2, n2 = sharded_testbed_digest ~shards:2 ~seed:7 in
  let d4, n4 = sharded_testbed_digest ~shards:4 ~seed:7 in
  Alcotest.(check int) "serial" 1 n1;
  Alcotest.(check int) "two shards" 2 n2;
  Alcotest.(check int) "four shards" 4 n4;
  Alcotest.(check string) "2 domains == serial" d1 d2;
  Alcotest.(check string) "4 domains == serial" d1 d4;
  (* A different seed must give a different run (the digest is not
     degenerate). *)
  let d1', _ = sharded_testbed_digest ~shards:1 ~seed:8 in
  Alcotest.(check bool) "digest sensitive to the run" false (d1 = d1')

(* Golden serial digests, captured before the parallel-core overhaul
   (BFS-only partitioner, monolithic heap, 3-barrier coordinator). The
   event core is the regression oracle for every optimization behind
   it: if one of these moves, serial behavior changed — a much stronger
   claim than shards merely agreeing with each other. Keys: MD5 of
   [Common.run_digest] over the full delivered/forwarded/drop/snapshot
   report. *)
let test_golden_serial_digests () =
  let check name expect digest =
    Alcotest.(check string) name expect (Digest.to_hex (Digest.string digest))
  in
  let d7, _ = sharded_testbed_digest ~shards:1 ~seed:7 in
  check "testbed seed 7" "649101faacdfc3a75da0cd8954e22ce1" d7;
  let d8, _ = sharded_testbed_digest ~shards:1 ~seed:8 in
  check "testbed seed 8" "5b60921f6237c92e7b1b6b938dcaa95e" d8

(* 8-way sharding needs a topology with enough switches for eight
   non-empty parts: the k=4 fat tree (20 switches). The leaf-spine
   testbed above clamps at 4. *)
let fat_tree_digest ~shards ~seed =
  let open Speedlight_sim in
  let open Speedlight_net in
  let open Speedlight_topology in
  let open Speedlight_workload in
  let cfg = Config.default |> Config.with_seed seed in
  let ft = Topology.fat_tree ~k:4 () in
  let net = Net.create ~cfg ~shards ft.Topology.ft_topo in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ft.Topology.ft_hosts in
  Apps.Uniform.run ~engine ~rng ~send:(Common.sender net) ~fids ~hosts
    ~rate_pps:10_000. ~pkt_size:1500 ~until:(Time.ms 10);
  Net.schedule_global net ~at:(Time.ms 4) (fun () -> Net.auto_exclude_idle net);
  let sids =
    Common.take_snapshots net ~start:(Time.ms 5) ~interval:(Time.ms 2) ~count:3
      ~run_until:(Time.ms 20)
  in
  (Common.run_digest net ~sids, Net.n_shards net)

let test_sharded_equivalence_8 () =
  let d1, n1 = fat_tree_digest ~shards:1 ~seed:7 in
  let d8, n8 = fat_tree_digest ~shards:8 ~seed:7 in
  Alcotest.(check int) "serial" 1 n1;
  Alcotest.(check int) "eight shards" 8 n8;
  Alcotest.(check string) "8 domains == serial" d1 d8;
  Alcotest.(check string) "fat-tree serial digest pinned"
    "bd73a2f130655368cee6aadf2c3e42ba"
    (Digest.to_hex (Digest.string d1))

let test_fig13_shape () =
  let r = Fig13.run ~quick:true () in
  let n = Array.length r.Fig13.snap.Fig13.units in
  Alcotest.(check int) "14 egress ports" 14 n;
  Alcotest.(check int) "matrices square" n (Array.length r.Fig13.snap.Fig13.rho);
  Alcotest.(check bool) "snapshots find significant pairs" true
    (r.Fig13.snap_sig_pairs > 0);
  Fig13.print null_fmt r

let test_ablation_initiator () =
  let r = Ablations.run_initiator ~quick:true () in
  Alcotest.(check bool) "single initiator much worse" true
    (Cdf.median r.Ablations.single_sync > 3. *. Cdf.median r.Ablations.multi_sync);
  Alcotest.(check bool) "single initiator misses units" true
    (r.Ablations.single_unreached > 0);
  Ablations.print_initiator null_fmt r

let test_ablation_notifications () =
  let r = Ablations.run_notifications ~quick:true () in
  Alcotest.(check bool) "channel state costs more notifications" true
    (r.Ablations.with_cs_per_snapshot > r.Ablations.no_cs_per_snapshot);
  Alcotest.(check bool) "no-CS is ~2 per unit (28 units)" true
    (r.Ablations.no_cs_per_snapshot > 20. && r.Ablations.no_cs_per_snapshot < 40.);
  Ablations.print_notifications null_fmt r

let test_scale_sharded () =
  let r = Scale.run_sharded ~quick:true () in
  Alcotest.(check int) "three domain counts" 3 (List.length r);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "k=%d domains=%d digest matches serial" p.Scale.sp_k
           p.Scale.sp_domains)
        true p.Scale.sp_identical;
      if p.Scale.sp_domains > 1 then
        Alcotest.(check bool) "sharded runs have positive lookahead" true
          (p.Scale.sp_lookahead_us > 0.))
    r;
  Scale.print_sharded null_fmt r

let test_scale_extension () =
  let r = Scale.run ~quick:true () in
  List.iter
    (fun p ->
      Alcotest.(check bool) "measured within 3x of prediction" true
        (p.Scale.measured_avg_us < 3. *. p.Scale.predicted_avg_us
        && p.Scale.measured_avg_us *. 3. > p.Scale.predicted_avg_us);
      Alcotest.(check bool) "sane magnitude (<100us)" true
        (p.Scale.measured_avg_us < 100.))
    r;
  Scale.print null_fmt r

let test_chaos_smoke () =
  (* Two audited points: a clean baseline and a heavy-fault run. The
     baseline must be fully certified; the faulted run may degrade but
     never lie. *)
  let clean = Chaos.run_point ~quick:true ~seed:31 ~intensity:0. () in
  Alcotest.(check bool) "clean run completes" true
    (clean.Chaos.completion_rate > 0.99);
  Alcotest.(check int) "clean run: no false consistents" 0
    clean.Chaos.false_consistent;
  Alcotest.(check bool) "clean run: snapshots certified" true
    (clean.Chaos.certified > 0);
  let hot = Chaos.run_point ~quick:true ~seed:31 ~intensity:1. () in
  Alcotest.(check bool) "faults actually injected" true
    (hot.Chaos.injected_drops > 0 && hot.Chaos.faults_fired > 0);
  Alcotest.(check int) "chaos run: no false consistents" 0
    hot.Chaos.false_consistent;
  Chaos.print null_fmt [ clean; hot ]

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "table1" `Quick test_table1;
          Alcotest.test_case "fig10 shape" `Slow test_fig10_shape;
          Alcotest.test_case "fig11 shape" `Quick test_fig11_shape;
          Alcotest.test_case "fig9 shape" `Slow test_fig9_shape;
          Alcotest.test_case "fig9 domain determinism" `Slow
            test_fig9_domain_determinism;
          Alcotest.test_case "sharded == serial (1/2/4 domains)" `Quick
            test_sharded_equivalence;
          Alcotest.test_case "golden serial digests" `Quick
            test_golden_serial_digests;
          Alcotest.test_case "sharded == serial (8 domains, fat tree)" `Quick
            test_sharded_equivalence_8;
          Alcotest.test_case "fig13 shape" `Slow test_fig13_shape;
          Alcotest.test_case "ablation: initiator" `Slow test_ablation_initiator;
          Alcotest.test_case "ablation: notifications" `Slow test_ablation_notifications;
          Alcotest.test_case "scale extension" `Slow test_scale_extension;
          Alcotest.test_case "scale sharded (fat tree)" `Quick test_scale_sharded;
          Alcotest.test_case "chaos sweep smoke (audited)" `Quick
            test_chaos_smoke;
        ] );
    ]

(* Tests for the snapshot query engine: combinators over synthetic rounds
   (known answers), the audit-label bridge on a real verified run, and the
   acceptance bar — the canned uplink-imbalance query reproduces the
   pre-query-engine examples/load_balancing.ml computation exactly. *)

open Speedlight_sim
open Speedlight_stats
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_verify
open Speedlight_store
open Speedlight_query
open Speedlight_experiments

(* ------------------------------------------------------------------ *)
(* Synthetic rounds with known answers *)

let rcd ?v ?(channel = 0.) ?(consistent = true) ?(inferred = false) uid =
  {
    Store.r_uid = uid;
    r_value = v;
    r_channel = channel;
    r_consistent = consistent;
    r_inferred = inferred;
  }

let mk_round ?(complete = true) ?(consistent = true) ?(label = Store.Unaudited)
    ~sid ~fire records =
  {
    Store.sid;
    fire_time = fire;
    staleness = None;
    complete;
    consistent;
    timed_out = [];
    label;
    records = Array.of_list records;
  }

let u00i = Unit_id.ingress ~switch:0 ~port:0
let u01e = Unit_id.egress ~switch:0 ~port:1
let u02e = Unit_id.egress ~switch:0 ~port:2
let u11e = Unit_id.egress ~switch:1 ~port:1

let sample_rounds () =
  [
    mk_round ~sid:1 ~fire:(Time.ms 10)
      [
        rcd ~v:10. u00i; rcd ~v:1. u01e; rcd ~v:3. u02e;
        rcd ~v:5. ~consistent:false u11e;
      ];
    mk_round ~sid:2 ~fire:(Time.ms 20) ~label:Store.Certified
      [ rcd ~v:20. u00i; rcd ~v:2. u01e; rcd ~v:4. u02e; rcd ~v:6. u11e ];
    mk_round ~sid:3 ~fire:(Time.ms 30) ~complete:false
      [ rcd u00i; rcd ~v:3. u01e ];
  ]

let q () = Query.of_rounds (sample_rounds ())

let test_select () =
  Alcotest.(check int) "all rows" 10 (List.length (Query.rows (q ())));
  Alcotest.(check int) "switch 0" 8
    (List.length (Query.rows (Query.select ~switch:0 (q ()))));
  Alcotest.(check int) "egress only" 7
    (List.length (Query.rows (Query.select ~dir:Unit_id.Egress (q ()))));
  Alcotest.(check int) "one unit" 2
    (List.length (Query.rows (Query.select ~unit_id:u11e (q ()))));
  Alcotest.(check int) "switch+port" 3
    (List.length (Query.rows (Query.select ~switch:0 ~port:1 (q ()))));
  Alcotest.(check int) "where value > 3" 5
    (List.length
       (Query.rows
          (Query.where (fun r -> match r.Query.value with Some v -> v > 3. | None -> false) (q ()))))

let test_round_filters () =
  Alcotest.(check int) "complete_only drops sid 3" 2
    (Query.length (Query.complete_only (q ())));
  Alcotest.(check int) "certified_only" 1
    (Query.length (Query.certified_only (q ())));
  Alcotest.(check (list int)) "between [15,30] ms"
    [ 2; 3 ]
    (List.map
       (fun r -> r.Store.sid)
       (Query.rounds (Query.between ~lo:(Time.ms 15) ~hi:(Time.ms 30) (q ()))));
  Alcotest.(check int) "with_labels unaudited" 2
    (Query.length (Query.with_labels [ Store.Unaudited ] (q ())))

let test_values_and_consistency () =
  let sel = Query.select ~unit_id:u11e (q ()) in
  Alcotest.(check int) "raw values keep inconsistent record" 2
    (Array.length (Query.values sel));
  Alcotest.(check int) "consistent_values drop it" 1
    (Array.length (Query.consistent_values sel));
  Alcotest.(check (option (float 0.))) "value_at" (Some 4.)
    (Query.value_at (q ()) ~sid:2 ~uid:u02e);
  Alcotest.(check (option (float 0.))) "value_at valueless record" None
    (Query.value_at (q ()) ~sid:3 ~uid:u00i)

let test_grouping_and_aggregation () =
  let sums = Query.round_aggregate Query.Agg.Sum (Query.select ~dir:Unit_id.Egress (q ())) in
  Alcotest.(check (list (pair int (float 1e-9)))) "per-round egress sums"
    [ (1, 9.); (2, 12.); (3, 3.) ]
    sums;
  let maxes = Query.unit_aggregate Query.Agg.Max (q ()) in
  Alcotest.(check int) "per-unit groups" 4 (List.length maxes);
  Alcotest.(check (list (pair int (float 1e-9)))) "counts include valueless"
    [ (1, 4.); (2, 4.); (3, 2.) ]
    (List.map
       (fun (sid, rows) -> (sid, float_of_int (List.length rows)))
       (Query.by_round (q ())));
  (* by_unit is ordered by Unit_id.compare. *)
  let units = List.map fst (Query.by_unit (q ())) in
  Alcotest.(check bool) "by_unit sorted" true
    (List.sort Unit_id.compare units = units);
  (* group_by preserves first-appearance order. *)
  let by_sw = Query.group_by (fun r -> r.Query.uid.Unit_id.switch) (q ()) in
  Alcotest.(check (list int)) "group_by order" [ 0; 1 ] (List.map fst by_sw)

let test_agg_functions () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  let open Query.Agg in
  Alcotest.(check (float 1e-9)) "count" 4. (apply Count xs);
  Alcotest.(check (float 1e-9)) "sum" 10. (apply Sum xs);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (apply Mean xs);
  Alcotest.(check (float 1e-9)) "min" 1. (apply Min xs);
  Alcotest.(check (float 1e-9)) "max" 4. (apply Max xs);
  Alcotest.(check (float 1e-9)) "stddev (population)"
    (Descriptive.population_stddev xs) (apply Stddev xs);
  Alcotest.(check (float 1e-9)) "median quantile" 2. (apply (Quantile 0.5) xs);
  Alcotest.(check (float 1e-9)) "empty count" 0. (apply Count [||]);
  Alcotest.(check bool) "empty sum is nan" true (Float.is_nan (apply Sum [||]))

let test_series_and_diff () =
  let srs = Query.series (Query.select ~unit_id:u01e (q ())) in
  Alcotest.(check int) "one unit" 1 (List.length srs);
  let _, points = List.hd srs in
  Alcotest.(check int) "three points" 3 (Array.length points);
  Alcotest.(check (float 1e-9)) "second value" 2. (snd points.(1));
  let d = Query.diff (q ()) ~base:1 ~sid:2 in
  Alcotest.(check int) "diff covers units valued in both" 4 (List.length d);
  Alcotest.(check (float 1e-9)) "u00i delta" 10. (List.assoc u00i d);
  (* sid 3 has no value for u00i, so it drops out. *)
  let d' = Query.diff (q ()) ~base:1 ~sid:3 in
  Alcotest.(check bool) "valueless record excluded" true
    (List.assoc_opt u00i d' = None)

(* ------------------------------------------------------------------ *)
(* Canned analyses on synthetic data *)

let test_queue_concurrency () =
  match Query.Canned.queue_concurrency (q ()) with
  | [ a; b ] ->
      Alcotest.(check (float 1e-9)) "sid1 total" 9. a.Query.Canned.c_total;
      Alcotest.(check int) "sid1 busy" 3 a.Query.Canned.c_busy;
      Alcotest.(check (float 1e-9)) "sid2 total" 12. b.Query.Canned.c_total;
      Alcotest.(check int) "sid2 busy" 3 b.Query.Canned.c_busy
  | l -> Alcotest.failf "expected 2 complete rounds, got %d" (List.length l)

let test_incast_episodes () =
  let eps = Query.Canned.incast_episodes ~trigger:u11e ~threshold:5. (q ()) in
  Alcotest.(check int) "both complete rounds trigger" 2 (List.length eps);
  let e = List.hd eps in
  Alcotest.(check (float 1e-9)) "depth" 5. e.Query.Canned.i_depth;
  Alcotest.(check int) "other busy egress ports" 2 e.Query.Canned.i_others;
  Alcotest.(check int) "higher threshold filters" 1
    (List.length (Query.Canned.incast_episodes ~trigger:u11e ~threshold:6. (q ())))

let test_causal_violations () =
  let probe s = Unit_id.ingress ~switch:s ~port:0 in
  let vround sid vs =
    mk_round ~sid ~fire:(Time.ms sid)
      (List.mapi (fun s v -> rcd ~v:(float_of_int v) (probe s)) vs)
  in
  (* Rollout order 0,1,2: versions must be non-increasing along it. *)
  let ok = vround 1 [ 3; 2; 1 ] in
  let also_ok = vround 2 [ 2; 2; 2 ] in
  let impossible = vround 3 [ 1; 2; 0 ] in
  let bad, total =
    Query.Canned.causal_violations ~rollout_order:[ 0; 1; 2 ] ~probe
      (Query.of_rounds [ ok; also_ok; impossible ])
  in
  Alcotest.(check int) "total" 3 total;
  Alcotest.(check int) "violations" 1 bad

let test_uplink_spearman () =
  let mk sid a b =
    mk_round ~sid ~fire:(Time.ms (10 * sid)) [ rcd ~v:a u01e; rcd ~v:b u02e ]
  in
  let t = Query.of_rounds [ mk 1 1. 10.; mk 2 2. 20.; mk 3 3. 30.; mk 4 4. 40. ] in
  match Query.Canned.uplink_spearman ~uplinks:[ (0, [ 1; 2 ]) ] t with
  | [ (a, b, r) ] ->
      Alcotest.(check bool) "pair is (u01e, u02e)" true
        (Unit_id.equal a u01e && Unit_id.equal b u02e);
      Alcotest.(check (float 1e-9)) "monotone series fully correlated" 1.
        r.Spearman.rho;
      Alcotest.(check int) "n" 4 r.Spearman.n
  | l -> Alcotest.failf "expected 1 pair, got %d" (List.length l)

let test_flow_transit () =
  let ts = Query.Canned.flow_transit ~entry:u00i ~exit_:u01e (q ()) in
  Alcotest.(check int) "complete rounds only" 2 (List.length ts);
  let t1 = List.hd ts in
  Alcotest.(check (float 1e-9)) "entered" 10. t1.Query.Canned.t_entered;
  Alcotest.(check (float 1e-9)) "exited" 1. t1.Query.Canned.t_exited

(* ------------------------------------------------------------------ *)
(* CSV / export plumbing *)

let test_csv_shapes () =
  let rows = Query.rows (q ()) in
  List.iter
    (fun r ->
      Alcotest.(check int) "row width matches header"
        (List.length Query.csv_header) (List.length r))
    (Query.rows_to_csv rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "summary width matches header"
        (List.length Query.summary_header) (List.length r))
    (Query.round_summary_to_csv (q ()))

let test_label_of_verdict () =
  Alcotest.(check string) "certified" "certified"
    (Store.label_name (Query.label_of_verdict Verify.Certified_consistent));
  Alcotest.(check string) "false consistent" "false-consistent"
    (Store.label_name (Query.label_of_verdict (Verify.False_consistent [])));
  Alcotest.(check string) "flagged" "correctly-flagged"
    (Store.label_name (Query.label_of_verdict Verify.Correctly_flagged));
  Alcotest.(check string) "over-conservative" "over-conservative"
    (Store.label_name (Query.label_of_verdict (Verify.Over_conservative [])));
  Alcotest.(check string) "incomplete" "incomplete"
    (Store.label_name (Query.label_of_verdict Verify.Incomplete))

(* ------------------------------------------------------------------ *)
(* Audit bridge on a real run *)

let test_certified_filter_on_real_run () =
  let cfg = Config.default |> Config.with_seed 7 in
  let ls, net = Common.make_testbed ~cfg () in
  Speedlight_workload.Apps.Uniform.run ~engine:(Net.engine net) ~rng:(Net.fresh_rng net)
    ~send:(Common.sender net) ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server) ~rate_pps:20_000.
    ~pkt_size:1500 ~until:(Time.ms 40);
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let auditor = Verify.attach net in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 20) ~interval:(Time.ms 6) ~count:5
      ~run_until:(Time.ms 90)
  in
  let audit = Verify.audit auditor ~sids in
  let t = Query.apply_audit audit (Query.of_net net ~sids) in
  Alcotest.(check bool) "clean run: audit certifies" true (Verify.ok audit);
  Alcotest.(check int) "certified_only keeps the certified sids"
    (List.length audit.Verify.certified)
    (Query.length (Query.certified_only t));
  Alcotest.(check bool) "filter not vacuous" true
    (Query.length (Query.certified_only t) > 0)

(* ------------------------------------------------------------------ *)
(* Acceptance bar: canned imbalance == the pre-query-engine example *)

let lb_run () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Ewma_interarrival
    |> Config.with_seed 11
  in
  let net = Net.create ~cfg ls.Topology.topo in
  let hosts = Array.to_list ls.Topology.host_of_server in
  Speedlight_workload.Apps.Hadoop.run ~engine:(Net.engine net) ~rng:(Net.fresh_rng net)
    ~send:(Common.sender net) ~fids:(Traffic.flow_ids ()) ~until:(Time.ms 300)
    (Speedlight_workload.Apps.Hadoop.default_params ~mappers:hosts ~reducers:hosts);
  let sids =
    Common.take_snapshots net ~start:(Time.ms 100) ~interval:(Time.ms 10)
      ~count:20 ~run_until:(Time.ms 500)
  in
  (ls, net, sids)

(* Verbatim port of the metric as examples/load_balancing.ml computed it
   before the query engine existed: raw report values via Net.result. *)
let legacy_imbalance_samples (ls : Topology.leaf_spine) net sids =
  List.concat_map
    (fun sid ->
      match Net.result net ~sid with
      | Some snap when snap.Observer.complete ->
          List.filter_map
            (fun (leaf, ports) ->
              let values =
                List.filter_map
                  (fun p ->
                    match
                      Unit_id.Map.find_opt
                        (Unit_id.egress ~switch:leaf ~port:p)
                        snap.Observer.reports
                    with
                    | Some r -> r.Report.value
                    | None -> None)
                  ports
              in
              if List.length values >= 2 then
                Some (Descriptive.population_stddev (Array.of_list values) /. 1_000.)
              else None)
            ls.Topology.uplink_ports
      | Some _ | None -> [])
    sids

let test_imbalance_matches_legacy_example () =
  let ls, net, sids = lb_run () in
  let legacy = Cdf.of_samples (Array.of_list (legacy_imbalance_samples ls net sids)) in
  let canned =
    Query.Canned.uplink_imbalance ~uplinks:ls.Topology.uplink_ports
      (Query.of_net net ~sids)
  in
  Alcotest.(check int) "same sample count" (Cdf.size legacy) (Cdf.size canned);
  Alcotest.(check bool) "samples not vacuous" true (Cdf.size canned > 0);
  Alcotest.(check bool) "identical CDF, point for point" true
    (Cdf.points legacy = Cdf.points canned);
  (* ... and the same through a disk round-trip. *)
  let dir = Filename.temp_file "sl-query-lb" "" in
  Sys.remove dir;
  let w = Store.Writer.create ~dir () in
  List.iter (Store.Writer.append w) (Store.rounds_of_net net ~sids);
  Store.Writer.close w;
  let from_disk =
    Query.Canned.uplink_imbalance ~uplinks:ls.Topology.uplink_ports
      (Query.of_reader (Store.Reader.open_archive_exn dir))
  in
  Alcotest.(check bool) "identical after archive round-trip" true
    (Cdf.points legacy = Cdf.points from_disk)

let () =
  Alcotest.run "query"
    [
      ( "combinators",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "round filters" `Quick test_round_filters;
          Alcotest.test_case "values vs consistent values" `Quick
            test_values_and_consistency;
          Alcotest.test_case "grouping" `Quick test_grouping_and_aggregation;
          Alcotest.test_case "aggregates" `Quick test_agg_functions;
          Alcotest.test_case "series and diff" `Quick test_series_and_diff;
        ] );
      ( "canned",
        [
          Alcotest.test_case "queue concurrency" `Quick test_queue_concurrency;
          Alcotest.test_case "incast episodes" `Quick test_incast_episodes;
          Alcotest.test_case "causal violations" `Quick test_causal_violations;
          Alcotest.test_case "uplink spearman" `Quick test_uplink_spearman;
          Alcotest.test_case "flow transit" `Quick test_flow_transit;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv shapes" `Quick test_csv_shapes;
          Alcotest.test_case "verdict labels" `Quick test_label_of_verdict;
        ] );
      ( "audit",
        [
          Alcotest.test_case "certified filter on a real run" `Quick
            test_certified_filter_on_real_run;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "imbalance == legacy example" `Quick
            test_imbalance_matches_legacy_example;
        ] );
    ]

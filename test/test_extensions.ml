(* Tests for the production extensions: the count-min sketch and its
   snapshot counter, the classic marker-based Chandy-Lamport baseline, the
   ASCII chart renderer, CSV export, the continuous Monitor API, and the
   marker-overhead ablation. *)

open Speedlight_sim
open Speedlight_stats
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net

(* ------------------------------------------------------------------ *)
(* Sketch *)

let test_sketch_exact_when_sparse () =
  let sk = Sketch.create ~depth:4 ~width:1024 () in
  Sketch.update sk ~flow_id:7 3;
  Sketch.update sk ~flow_id:7 2;
  Sketch.update sk ~flow_id:9 1;
  Alcotest.(check int) "flow 7" 5 (Sketch.query sk ~flow_id:7);
  Alcotest.(check int) "flow 9" 1 (Sketch.query sk ~flow_id:9);
  Alcotest.(check int) "absent flow" 0 (Sketch.query sk ~flow_id:12345);
  Alcotest.(check int) "total" 6 (Sketch.total sk)

let test_sketch_never_underestimates =
  QCheck.Test.make ~name:"count-min never underestimates" ~count:100
    QCheck.(pair small_int (list_of_size Gen.(1 -- 200) (int_range 0 50)))
    (fun (seed, flows) ->
      ignore seed;
      let sk = Sketch.create ~depth:4 ~width:64 () in
      let truth = Hashtbl.create 64 in
      List.iter
        (fun f ->
          Sketch.update sk ~flow_id:f 1;
          Hashtbl.replace truth f (1 + Option.value ~default:0 (Hashtbl.find_opt truth f)))
        flows;
      Hashtbl.fold
        (fun f c ok -> ok && Sketch.query sk ~flow_id:f >= c)
        truth true)

let test_sketch_error_bound () =
  (* With width >> distinct flows, estimates should be exact. *)
  let sk = Sketch.create ~depth:4 ~width:4096 () in
  let rng = Rng.create 3 in
  let truth = Array.make 50 0 in
  for _ = 1 to 5_000 do
    let f = Rng.int rng 50 in
    truth.(f) <- truth.(f) + 1;
    Sketch.update sk ~flow_id:f 1
  done;
  Array.iteri
    (fun f c -> Alcotest.(check int) (Printf.sprintf "flow %d exact" f) c
        (Sketch.query sk ~flow_id:f))
    truth

let test_sketch_reset () =
  let sk = Sketch.create () in
  Sketch.update sk ~flow_id:1 10;
  Sketch.reset sk;
  Alcotest.(check int) "cleared" 0 (Sketch.query sk ~flow_id:1);
  Alcotest.(check int) "total cleared" 0 (Sketch.total sk)

let test_sketch_counter () =
  let c = Counter.sketch_flow ~tracked_flow:42 () in
  let mk flow =
    Packet.create ~uid:0 ~flow_id:flow ~src_host:0 ~dst_host:1 ~size:100 ~created:0 ()
  in
  for _ = 1 to 7 do
    Counter.update c ~now:0 (mk 42)
  done;
  for _ = 1 to 3 do
    Counter.update c ~now:0 (mk 5)
  done;
  Alcotest.(check (float 1e-9)) "tracked flow estimate" 7. (Counter.read c ~now:0);
  Alcotest.(check (float 1e-9)) "tracked contributes channel state" 1.
    (Counter.channel_contribution c (mk 42));
  Alcotest.(check (float 1e-9)) "others do not" 0.
    (Counter.channel_contribution c (mk 5))

let test_sketch_snapshot_integration () =
  (* Track one flow across the network with channel-state snapshots; the
     tracked flow's wire conservation holds exactly because channel
     contributions are per-packet exact and sketch estimates only ever
     overestimate by collisions (none at this scale). *)
  let host_link = { Topology.bandwidth_bps = 1e9; latency = Time.us 1 } in
  let fabric_link = { Topology.bandwidth_bps = 4e9; latency = Time.us 1 } in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let tracked = 777 in
  let cfg = Config.default |> Config.with_counter (Config.Sketch_flow tracked) in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  (* The tracked elephant plus background flows. *)
  let h = ls.Topology.host_of_server in
  let rec elephant n =
    if n > 0 then begin
      Net.send net ~flow_id:tracked ~src:h.(0) ~dst:h.(3) ~size:1500 ();
      ignore (Engine.schedule_after engine ~delay:(Time.us 120) (fun () -> elephant (n - 1)))
    end
  in
  elephant 600;
  let rec background n =
    if n > 0 then begin
      Net.send net ~flow_id:(1000 + (n mod 17)) ~src:h.(1) ~dst:h.(4) ~size:800 ();
      ignore (Engine.schedule_after engine ~delay:(Time.us 90) (fun () -> background (n - 1)))
    end
  in
  background 800;
  ignore (Engine.schedule engine ~at:(Time.ms 20) (fun () -> Net.auto_exclude_idle net));
  let sid = ref 0 in
  ignore
    (Engine.schedule engine ~at:(Time.ms 30) (fun () ->
         match Net.try_take_snapshot net () with
         | Ok s -> sid := s
         | Error e ->
             Alcotest.fail ("snapshot refused: " ^ Observer.error_to_string e)));
  Engine.run_until engine (Time.ms 300);
  match Net.result net ~sid:!sid with
  | Some snap ->
      Alcotest.(check bool) "complete" true snap.Observer.complete;
      (* Somewhere in the network the tracked flow was seen pre-snapshot. *)
      let any_positive =
        Unit_id.Map.exists
          (fun _ (r : Report.t) ->
            match Report.consistent_value r with Some v -> v > 0. | None -> false)
          snap.Observer.reports
      in
      Alcotest.(check bool) "tracked flow visible in snapshot" true any_positive
  | None -> Alcotest.fail "snapshot missing"

(* ------------------------------------------------------------------ *)
(* Classic_marker *)

let test_classic_basic_flow () =
  let n = Classic_marker.create ~n_in:2 ~n_out:2 in
  let sent = ref [] in
  let send_marker ~out_channel_ = sent := out_channel_ :: !sent in
  Alcotest.(check bool) "not recorded" false (Classic_marker.recorded n);
  Classic_marker.initiate n ~state:10. ~send_marker;
  Alcotest.(check bool) "recorded" true (Classic_marker.recorded n);
  Alcotest.(check int) "markers on both outputs" 2 (List.length !sent);
  (* In-flight packets on channel 0 count until its marker arrives. *)
  Classic_marker.on_packet n ~in_channel_:0 ~contribution:1.;
  Classic_marker.on_packet n ~in_channel_:0 ~contribution:1.;
  Classic_marker.on_marker n ~in_channel_:0 ~state:0. ~send_marker;
  Classic_marker.on_packet n ~in_channel_:0 ~contribution:1. (* post-marker *);
  Alcotest.(check (float 1e-9)) "channel 0 state" 2. (Classic_marker.channel_state n 0);
  Alcotest.(check bool) "incomplete with channel 1 open" false (Classic_marker.complete n);
  Classic_marker.on_marker n ~in_channel_:1 ~state:0. ~send_marker;
  Alcotest.(check bool) "complete" true (Classic_marker.complete n);
  Alcotest.(check int) "no duplicate markers" 2 (Classic_marker.markers_sent n)

let test_classic_marker_triggers_snapshot () =
  let n = Classic_marker.create ~n_in:1 ~n_out:3 in
  let sent = ref 0 in
  Classic_marker.on_packet n ~in_channel_:0 ~contribution:5.;
  (* Pre-snapshot packets are not channel state. *)
  Classic_marker.on_marker n ~in_channel_:0 ~state:42. ~send_marker:(fun ~out_channel_:_ -> incr sent);
  Alcotest.(check (option (float 1e-9))) "state from marker" (Some 42.)
    (Classic_marker.state n);
  Alcotest.(check (float 1e-9)) "channel closed immediately" 0.
    (Classic_marker.channel_state n 0);
  Alcotest.(check bool) "complete (single input)" true (Classic_marker.complete n);
  Alcotest.(check int) "cascaded markers" 3 !sent

(* Differential check against the Fig. 3 spec for one snapshot on a node
   with FIFO inputs: classic markers and piggybacked IDs must record the
   same state and channel contributions. *)
let test_classic_vs_ideal =
  QCheck.Test.make ~name:"classic CL == Fig.3 spec for a single snapshot" ~count:100
    QCheck.(pair small_int (int_range 1 3))
    (fun (seed, k) ->
      let rng = Rng.create (seed + 17) in
      let classic = Classic_marker.create ~n_in:k ~n_out:0 in
      let ideal = Ideal_unit.create ~n_neighbors:k ~channel_state:true in
      let state = ref 0. in
      (* Phase 1: pre-snapshot traffic. *)
      for _ = 1 to Rng.int rng 20 do
        let ch = Rng.int rng k in
        let _ = Ideal_unit.on_receive ideal ~sender:ch ~pkt_sid:0 ~contribution:1. in
        Ideal_unit.set_state ideal (Ideal_unit.state ideal +. 1.);
        Classic_marker.on_packet classic ~in_channel_:ch ~contribution:1.;
        state := !state +. 1.
      done;
      (* Snapshot initiates locally on both. *)
      Classic_marker.initiate classic ~state:!state ~send_marker:(fun ~out_channel_:_ -> ());
      Ideal_unit.initiate ideal ~sid:1;
      (* Phase 2: per channel, some in-flight packets then the boundary
         (marker / first packet stamped 1). *)
      for ch = 0 to k - 1 do
        for _ = 1 to Rng.int rng 4 do
          let _ = Ideal_unit.on_receive ideal ~sender:ch ~pkt_sid:0 ~contribution:1. in
          Ideal_unit.set_state ideal (Ideal_unit.state ideal +. 1.);
          Classic_marker.on_packet classic ~in_channel_:ch ~contribution:1.;
          state := !state +. 1.
        done;
        Classic_marker.on_marker classic ~in_channel_:ch ~state:!state
          ~send_marker:(fun ~out_channel_:_ -> ());
        let _ = Ideal_unit.on_receive ideal ~sender:ch ~pkt_sid:1 ~contribution:1. in
        Ideal_unit.set_state ideal (Ideal_unit.state ideal +. 1.);
        state := !state +. 1.
      done;
      (* The ideal unit aggregates channel state across channels; classic
         CL keeps it per channel — totals must agree, as must the recorded
         local state. *)
      let total_classic =
        List.fold_left
          (fun acc ch -> acc +. Classic_marker.channel_state classic ch)
          0.
          (List.init k (fun i -> i))
      in
      Classic_marker.complete classic
      && Classic_marker.state classic = Ideal_unit.snapshot_value ideal ~sid:1
      && total_classic = Ideal_unit.channel_state_of ideal ~sid:1)

(* ------------------------------------------------------------------ *)
(* Chart *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_chart_renders_markers () =
  let out =
    Chart.plot_xy
      [ ("a", [| (1., 1.); (2., 2.) |]); ("b", [| (1., 2.); (2., 1.) |]) ]
  in
  Alcotest.(check bool) "series a marker" true (contains out "*");
  Alcotest.(check bool) "series b marker" true (contains out "+");
  Alcotest.(check bool) "legend" true (contains out "[*] a" && contains out "[+] b")

let test_chart_log_skips_nonpositive () =
  let out =
    Chart.plot_xy ~x_scale:Chart.Log10
      [ ("s", [| (0., 5.); (10., 1.); (100., 2.) |]) ]
  in
  (* The zero-x point must be dropped, not crash. *)
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_chart_empty_rejected () =
  Alcotest.(check bool) "nothing to plot raises" true
    (try
       ignore (Chart.plot_xy [ ("empty", [||]) ]);
       false
     with Invalid_argument _ -> true)

let test_chart_cdfs () =
  let cdf = Cdf.of_samples (Array.init 100 (fun i -> float_of_int (i + 1))) in
  let out = Chart.plot_cdfs ~x_label:"value" [ ("data", cdf) ] in
  Alcotest.(check bool) "CDF axis label" true (contains out "CDF");
  Alcotest.(check bool) "x label" true (contains out "value")

(* ------------------------------------------------------------------ *)
(* Export *)

let test_export_quoting_and_roundtrip () =
  let path = Filename.temp_file "speedlight" ".csv" in
  Speedlight_experiments.Export.write_rows ~path ~header:[ "a"; "b" ]
    [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "3 lines" 3 (List.length lines);
  Alcotest.(check string) "header" "a,b" (List.nth lines 0);
  Alcotest.(check string) "comma quoted" "plain,\"with,comma\"" (List.nth lines 1);
  Alcotest.(check string) "quote escaped" "\"with\"\"quote\",x" (List.nth lines 2)

let test_export_cdfs () =
  let path = Filename.temp_file "speedlight" ".csv" in
  let cdf = Cdf.of_samples [| 1.; 2. |] in
  Speedlight_experiments.Export.cdfs ~path [ ("s", cdf) ];
  let ic = open_in path in
  let header = input_line ic in
  let row1 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "series,value,cumulative_probability" header;
  Alcotest.(check string) "first point" "s,1,0.5" row1

(* ------------------------------------------------------------------ *)
(* Monitor *)

let test_monitor_stream () =
  let host_link = { Topology.bandwidth_bps = 1e9; latency = Time.us 1 } in
  let fabric_link = { Topology.bandwidth_bps = 4e9; latency = Time.us 1 } in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let cfg = Config.default |> Config.with_variant Snapshot_unit.variant_wraparound in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  let seen = ref 0 in
  let mon =
    Monitor.start net ~period:(Time.ms 10) ~history:5
      ~on_snapshot:(fun _ -> incr seen)
      ()
  in
  Engine.run_until engine (Time.ms 125);
  Monitor.stop mon;
  Engine.run_until engine (Time.ms 300);
  Alcotest.(check bool) "snapshots taken" true (Monitor.taken mon >= 10);
  Alcotest.(check int) "all delivered to callback" (Monitor.taken mon) !seen;
  Alcotest.(check int) "history bounded" 5 (List.length (Monitor.history mon));
  Alcotest.(check int) "no pacing skips at this rate" 0 (Monitor.skipped mon);
  (* Stopped: no further snapshots. *)
  let after = Monitor.taken mon in
  Engine.run_until engine (Time.ms 400);
  Alcotest.(check int) "stopped" after (Monitor.taken mon);
  (* Per-unit series come from the retained history. *)
  let uid = Unit_id.ingress ~switch:0 ~port:0 in
  Alcotest.(check int) "series length = history" 5
    (Array.length (Monitor.series mon uid))

let test_monitor_skips_when_overrunning () =
  (* A period far below the completion latency must trip the pacing guard
     rather than raise. *)
  let host_link = { Topology.bandwidth_bps = 1e9; latency = Time.us 1 } in
  let fabric_link = { Topology.bandwidth_bps = 4e9; latency = Time.us 1 } in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  (* Channel state with zero traffic: completion waits for retry floods
     (~50 ms), so a 1 ms period overruns immediately. *)
  let net = Net.create ls.Topology.topo in
  let engine = Net.engine net in
  let mon = Monitor.start net ~period:(Time.ms 1) () in
  Engine.run_until engine (Time.ms 100);
  Monitor.stop mon;
  Alcotest.(check bool) "skipped ticks counted" true (Monitor.skipped mon > 0)

(* ------------------------------------------------------------------ *)
(* Control-plane loss-recovery equivalence *)

(* Drive the same data-plane history into two trackers: one receives
   every notification; the other loses a random subset but is allowed a
   final register poll. The paper's recovery is deliberately conservative
   ("handles notification drops conservatively", SS6): the lossy tracker
   must finalize the same snapshot range, never report a value the
   lossless one didn't, and may only downgrade consistent snapshots to
   inconsistent — never the reverse. *)
let test_tracker_loss_recovery_equivalence =
  QCheck.Test.make ~name:"dropped notifications + poll: conservative recovery"
    ~count:60
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, epochs) ->
      let rng = Rng.create (seed + 31) in
      let mk () =
        let notifs = Queue.create () in
        let u =
          Snapshot_unit.create
            ~id:(Unit_id.ingress ~switch:0 ~port:0)
            ~cfg:Snapshot_unit.variant_channel_state ~n_neighbors:3
            ~counter:(Counter.packet_count ())
            ~notify:(fun n -> Queue.push n notifs)
            ()
        in
        let reports = ref [] in
        let access =
          {
            Cp_tracker.read_slot =
              (fun ~ghost_sid -> Snapshot_unit.read_slot u ~ghost_sid);
            read_sid = (fun () -> Snapshot_unit.current_sid u);
            read_last_seen = (fun () -> Snapshot_unit.last_seen u);
          }
        in
        let tracker =
          Cp_tracker.create ~channel_state:true
            ~units:
              [
                {
                  Cp_tracker.uid = Snapshot_unit.id u;
                  access;
                  n_neighbors = 3;
                  excluded_neighbors = [];
                };
              ]
            ~report:(fun r -> reports := r :: !reports)
            ()
        in
        (u, notifs, tracker, reports)
      in
      let u1, n1, t1, r1 = mk () in
      let u2, n2, t2, r2 = mk () in
      (* Identical data-plane history on both units. *)
      let uid = ref 0 in
      let feed f =
        incr uid;
        f u1;
        f u2
      in
      for e = 1 to epochs do
        feed (fun u -> Snapshot_unit.process_initiation u ~now:!uid ~sid:e ~ghost_sid:e);
        for ch = 1 to 2 do
          for _ = 0 to Rng.int rng 2 do
            feed (fun u ->
                let p =
                  Packet.create ~uid:!uid ~flow_id:1 ~src_host:0 ~dst_host:1
                    ~size:100 ~created:0 ()
                in
                Packet.set_snap p ~sid:e ~channel:ch ~ghost_sid:e;
                Snapshot_unit.process_packet u ~now:!uid p)
          done
        done
      done;
      (* Tracker 1: lossless. Tracker 2: ~40% loss, then a poll. *)
      Queue.iter (fun n -> Cp_tracker.on_notify t1 ~now:0 n) n1;
      Queue.iter
        (fun n -> if not (Rng.bernoulli rng 0.4) then Cp_tracker.on_notify t2 ~now:0 n)
        n2;
      Cp_tracker.poll t2 ~now:1;
      let by_sid l =
        List.sort (fun (a : Report.t) b -> compare a.Report.sid b.Report.sid) l
      in
      let l1 = by_sid !r1 and l2 = by_sid !r2 in
      List.length l1 = List.length l2
      && List.for_all2
           (fun (a : Report.t) (b : Report.t) ->
             a.Report.sid = b.Report.sid
             && (* never falsely consistent after loss *)
             ((not b.Report.consistent)
             || (a.Report.consistent && a.Report.value = b.Report.value
                && a.Report.channel = b.Report.channel)))
           l1 l2
      && (* the lossless run of this schedule is fully consistent *)
      List.for_all (fun (r : Report.t) -> r.Report.consistent) l1
      && Cp_tracker.finished_through t1 (Snapshot_unit.id u1)
         = Cp_tracker.finished_through t2 (Snapshot_unit.id u2))

(* ------------------------------------------------------------------ *)
(* Marker-overhead ablation *)

let test_marker_overhead () =
  let r = Speedlight_experiments.Ablations.run_marker_overhead () in
  (* Leaf-spine testbed: 2 leaves with 5 connected ports (5*4=20 internal
     channels each) + 2 spines with 2 ports (2 each) + 8 directed wires. *)
  Alcotest.(check int) "directed channels" 52
    r.Speedlight_experiments.Ablations.directed_channels;
  Alcotest.(check int) "marker bytes" (52 * 64)
    r.Speedlight_experiments.Ablations.marker_bytes_per_snapshot;
  Alcotest.(check int) "header bytes (chnl state)" 8
    r.Speedlight_experiments.Ablations.header_bytes_per_packet;
  let no_cs =
    Speedlight_experiments.Ablations.run_marker_overhead ~channel_state:false ()
  in
  Alcotest.(check int) "header bytes (no chnl state)" 4
    no_cs.Speedlight_experiments.Ablations.header_bytes_per_packet

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "extensions"
    [
      ( "sketch",
        [
          Alcotest.test_case "exact when sparse" `Quick test_sketch_exact_when_sparse;
          Alcotest.test_case "error bound" `Quick test_sketch_error_bound;
          Alcotest.test_case "reset" `Quick test_sketch_reset;
          Alcotest.test_case "counter" `Quick test_sketch_counter;
          Alcotest.test_case "snapshot integration" `Slow test_sketch_snapshot_integration;
          q test_sketch_never_underestimates;
        ] );
      ( "classic_marker",
        [
          Alcotest.test_case "basic flow" `Quick test_classic_basic_flow;
          Alcotest.test_case "marker triggers snapshot" `Quick
            test_classic_marker_triggers_snapshot;
          q test_classic_vs_ideal;
        ] );
      ( "chart",
        [
          Alcotest.test_case "markers + legend" `Quick test_chart_renders_markers;
          Alcotest.test_case "log skips nonpositive" `Quick test_chart_log_skips_nonpositive;
          Alcotest.test_case "empty rejected" `Quick test_chart_empty_rejected;
          Alcotest.test_case "cdfs" `Quick test_chart_cdfs;
        ] );
      ( "export",
        [
          Alcotest.test_case "quoting" `Quick test_export_quoting_and_roundtrip;
          Alcotest.test_case "cdf csv" `Quick test_export_cdfs;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "stream" `Quick test_monitor_stream;
          Alcotest.test_case "pacing skips" `Quick test_monitor_skips_when_overrunning;
        ] );
      ( "ablation",
        [ Alcotest.test_case "marker overhead" `Quick test_marker_overhead ] );
      ( "loss_recovery",
        [ q test_tracker_loss_recovery_equivalence ] );
    ]

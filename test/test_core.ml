(* Tests for the snapshot protocol core: wraparound arithmetic, the
   idealized Figure-3 unit, the hardware-constrained Speedlight unit
   (including a differential property test against the idealized spec),
   the Fig-7 control-plane tracker, and the observer. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core

let check_float eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Wrap *)

let test_wrap_basics () =
  Alcotest.(check int) "modulus" 8 (Wrap.modulus ~max_sid:7);
  Alcotest.(check int) "wrap" 2 (Wrap.wrap ~max_sid:7 10);
  Alcotest.(check int) "wrap negative" 6 (Wrap.wrap ~max_sid:7 (-2));
  Alcotest.(check int) "fwd distance" 3 (Wrap.forward_distance ~max_sid:7 ~from_:6 ~to_:1);
  Alcotest.(check int) "max skew" 3 (Wrap.max_skew ~max_sid:7)

let test_wrap_compare () =
  let cmp = Wrap.compare_ids ~max_sid:7 in
  Alcotest.(check bool) "equal" true (cmp 3 3 = Wrap.Equal);
  Alcotest.(check bool) "newer simple" true (cmp 4 3 = Wrap.Newer);
  Alcotest.(check bool) "older simple" true (cmp 2 3 = Wrap.Older);
  (* Rollover: 1 is newer than 6 in a mod-8 space. *)
  Alcotest.(check bool) "newer across rollover" true (cmp 1 6 = Wrap.Newer);
  Alcotest.(check bool) "older across rollover" true (cmp 6 1 = Wrap.Older)

let test_wrap_compare_matches_ints =
  QCheck.Test.make ~name:"wrapped compare = integer compare within half window"
    ~count:2000
    QCheck.(triple (int_range 3 64) (int_range 0 10_000) (int_range (-10_000) 10_000))
    (fun (max_sid, a, delta) ->
      (* Constrain the pair within the soundness window. *)
      let skew = Wrap.max_skew ~max_sid in
      let b = Stdlib.max 0 (a + (delta mod (skew + 1))) in
      QCheck.assume (abs (a - b) <= skew);
      let wa = Wrap.wrap ~max_sid a and wb = Wrap.wrap ~max_sid b in
      let expected = if a = b then Wrap.Equal else if a > b then Wrap.Newer else Wrap.Older in
      Wrap.compare_ids ~max_sid wa wb = expected)

let test_wrap_unwrap_roundtrip =
  QCheck.Test.make ~name:"unwrap recovers true value within half window"
    ~count:2000
    QCheck.(triple (int_range 3 64) (int_range 0 100_000) (int_range (-100) 100))
    (fun (max_sid, reference, delta) ->
      let m = Wrap.modulus ~max_sid in
      let half = m / 2 in
      let delta = delta mod (half + 1) in
      let x = Stdlib.max 0 (reference + delta) in
      (* Only deltas inside the window are guaranteed exact. *)
      QCheck.assume (x - reference > -half && x - reference <= m - half);
      Wrap.unwrap ~max_sid ~reference (Wrap.wrap ~max_sid x) = x)

let test_wrap_unwrap_skew_window =
  (* The shipped moduli: the 2-bit unit-test variant, the 8-bit hardware
     register, and an odd modulus to catch even/odd half-window slips. *)
  QCheck.Test.make
    ~name:"unwrap (wrap x) = x whenever |x - reference| <= max_skew" ~count:3000
    QCheck.(
      triple (oneofl [ 3; 255; 256 ]) (int_range 0 1_000_000)
        (int_range (-130) 130))
    (fun (max_sid, reference, d) ->
      let skew = Wrap.max_skew ~max_sid in
      let delta = d mod (skew + 1) in
      let x = reference + delta in
      QCheck.assume (x >= 0);
      Wrap.unwrap ~max_sid ~reference (Wrap.wrap ~max_sid x) = x)

let test_unwrap_edges () =
  (* Reference at zero, w a full half-window behind: the in-window
     candidate is negative, and the unique non-negative congruent value is
     one lap forward. *)
  Alcotest.(check int) "fallback stays non-negative" 255
    (Wrap.unwrap ~max_sid:255 ~reference:0 255);
  Alcotest.(check int) "behind a small reference" 0
    (Wrap.unwrap ~max_sid:255 ~reference:1 0);
  Alcotest.(check int) "ahead across rollover" 257
    (Wrap.unwrap ~max_sid:255 ~reference:255 1);
  (* Odd modulus (max_sid = 256, m = 257). *)
  Alcotest.(check int) "odd modulus, ahead" 300
    (Wrap.unwrap ~max_sid:256 ~reference:280 (Wrap.wrap ~max_sid:256 300));
  Alcotest.(check int) "odd modulus, behind" 260
    (Wrap.unwrap ~max_sid:256 ~reference:280 (Wrap.wrap ~max_sid:256 260))

let test_wrap_rejects_small () =
  Alcotest.(check bool) "max_sid >= 3 enforced" true
    (try
       ignore (Wrap.modulus ~max_sid:2);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Ideal_unit (Figure 3) *)

let test_ideal_advance_saves_state () =
  let u = Ideal_unit.create ~n_neighbors:2 ~channel_state:true in
  Ideal_unit.set_state u 42.;
  let _ = Ideal_unit.on_receive u ~sender:0 ~pkt_sid:1 ~contribution:1. in
  Alcotest.(check int) "advanced" 1 (Ideal_unit.sid u);
  Alcotest.(check (option (float 1e-9))) "state captured" (Some 42.)
    (Ideal_unit.snapshot_value u ~sid:1)

let test_ideal_jump_fills_intermediates () =
  let u = Ideal_unit.create ~n_neighbors:2 ~channel_state:true in
  Ideal_unit.set_state u 7.;
  let _ = Ideal_unit.on_receive u ~sender:0 ~pkt_sid:3 ~contribution:1. in
  (* Fig. 3 line 4: every skipped snapshot gets the same state. *)
  List.iter
    (fun i ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "snap %d" i) (Some 7.)
        (Ideal_unit.snapshot_value u ~sid:i))
    [ 1; 2; 3 ]

let test_ideal_in_flight_channel_state () =
  let u = Ideal_unit.create ~n_neighbors:2 ~channel_state:true in
  let _ = Ideal_unit.on_receive u ~sender:0 ~pkt_sid:2 ~contribution:0. in
  (* An old packet from sender 1 straddles snapshots 1 and 2. *)
  let _ = Ideal_unit.on_receive u ~sender:1 ~pkt_sid:0 ~contribution:5. in
  check_float 1e-9 "snap1 channel" 5. (Ideal_unit.channel_state_of u ~sid:1);
  check_float 1e-9 "snap2 channel" 5. (Ideal_unit.channel_state_of u ~sid:2);
  check_float 1e-9 "snap3 untouched" 0. (Ideal_unit.channel_state_of u ~sid:3)

let test_ideal_finished_through () =
  let u = Ideal_unit.create ~n_neighbors:2 ~channel_state:true in
  let _ = Ideal_unit.on_receive u ~sender:0 ~pkt_sid:2 ~contribution:1. in
  Alcotest.(check int) "not finished until all seen" 0 (Ideal_unit.finished_through u);
  let _ = Ideal_unit.on_receive u ~sender:1 ~pkt_sid:2 ~contribution:1. in
  Alcotest.(check int) "finished" 2 (Ideal_unit.finished_through u)

let test_ideal_initiate_idempotent () =
  let u = Ideal_unit.create ~n_neighbors:1 ~channel_state:false in
  Ideal_unit.initiate u ~sid:2;
  Ideal_unit.initiate u ~sid:1;
  Ideal_unit.initiate u ~sid:2;
  Alcotest.(check int) "outdated initiations ignored" 2 (Ideal_unit.sid u)

(* ------------------------------------------------------------------ *)
(* Snapshot_unit *)

let mk_unit ?(cfg = Snapshot_unit.variant_channel_state) ?(n_neighbors = 3)
    ?counter () =
  let counter = match counter with Some c -> c | None -> Counter.packet_count () in
  let notifs = ref [] in
  let u =
    Snapshot_unit.create
      ~id:(Unit_id.ingress ~switch:0 ~port:0)
      ~cfg ~n_neighbors ~counter
      ~notify:(fun n -> notifs := n :: !notifs)
      ()
  in
  (u, notifs)

let mk_data_packet ~sid ~channel ~ghost uid =
  let p =
    Packet.create ~uid ~flow_id:1 ~src_host:0 ~dst_host:1 ~size:100 ~created:0 ()
  in
  Packet.set_snap p ~sid ~channel ~ghost_sid:ghost;
  p

let test_unit_initiation_advances () =
  let u, notifs = mk_unit () in
  Snapshot_unit.process_initiation u ~now:10 ~sid:1 ~ghost_sid:1;
  Alcotest.(check int) "sid" 1 (Snapshot_unit.current_sid u);
  Alcotest.(check int) "ghost" 1 (Snapshot_unit.current_ghost_sid u);
  Alcotest.(check int) "one notification" 1 (List.length !notifs);
  let n = List.hd !notifs in
  Alcotest.(check int) "former sid" 0 n.Notification.former_sid;
  Alcotest.(check int) "new sid" 1 n.Notification.new_sid;
  Alcotest.(check int) "dp time" 10 n.Notification.dp_time

let test_unit_duplicate_initiation_ignored () =
  let u, notifs = mk_unit () in
  Snapshot_unit.process_initiation u ~now:10 ~sid:1 ~ghost_sid:1;
  let before = List.length !notifs in
  Snapshot_unit.process_initiation u ~now:20 ~sid:1 ~ghost_sid:1;
  Alcotest.(check int) "sid unchanged" 1 (Snapshot_unit.current_sid u);
  Alcotest.(check int) "no new notification" before (List.length !notifs)

let test_unit_saved_value_excludes_trigger () =
  (* The packet that advances the ID is post-snapshot: the saved counter
     value must not include it. *)
  let u, _ = mk_unit () in
  for i = 0 to 4 do
    Snapshot_unit.process_packet u ~now:i (mk_data_packet ~sid:0 ~channel:1 ~ghost:0 i)
  done;
  Snapshot_unit.process_packet u ~now:5 (mk_data_packet ~sid:1 ~channel:1 ~ghost:1 5);
  let slot = Snapshot_unit.read_slot u ~ghost_sid:1 in
  Alcotest.(check (option (float 1e-9))) "value excludes trigger" (Some 5.)
    slot.Snapshot_unit.value

let test_unit_in_flight_goes_to_current_slot () =
  let u, _ = mk_unit () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:1 ~ghost_sid:1;
  (* In-flight packet stamped 0 arrives after the snapshot. *)
  Snapshot_unit.process_packet u ~now:1 (mk_data_packet ~sid:0 ~channel:1 ~ghost:0 0);
  let slot = Snapshot_unit.read_slot u ~ghost_sid:1 in
  check_float 1e-9 "channel state accumulated" 1. slot.Snapshot_unit.channel

let test_unit_header_rewrite () =
  let u, _ = mk_unit () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:2 ~ghost_sid:2;
  let p = mk_data_packet ~sid:0 ~channel:1 ~ghost:0 0 in
  Snapshot_unit.process_packet u ~now:1 p;
  (match Packet.snap p with
  | Some h -> Alcotest.(check int) "header rewritten to local sid" 2 h.Snapshot_header.sid
  | None -> Alcotest.fail "header missing")

let test_unit_headerless_gets_header () =
  let u, notifs = mk_unit () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:3 ~ghost_sid:3;
  let before = List.length !notifs in
  let p = Packet.create ~uid:9 ~flow_id:1 ~src_host:0 ~dst_host:1 ~size:64 ~created:0 () in
  Snapshot_unit.process_packet u ~now:1 p;
  (match Packet.snap p with
  | Some h ->
      Alcotest.(check int) "attached at current sid" 3 h.Snapshot_header.sid
  | None -> Alcotest.fail "no header attached");
  Alcotest.(check int) "no snapshot notification for headerless" before
    (List.length !notifs)

let test_unit_last_seen_tracking () =
  let u, _ = mk_unit ~n_neighbors:3 () in
  Snapshot_unit.process_packet u ~now:0 (mk_data_packet ~sid:1 ~channel:1 ~ghost:1 0);
  Snapshot_unit.process_packet u ~now:1 (mk_data_packet ~sid:2 ~channel:2 ~ghost:2 1);
  let ls = Snapshot_unit.last_seen u in
  Alcotest.(check int) "channel1 saw 1" 1 ls.(1);
  Alcotest.(check int) "channel2 saw 2" 2 ls.(2)

let test_unit_fifo_violation_detected () =
  let u, _ = mk_unit () in
  Snapshot_unit.process_packet u ~now:0 (mk_data_packet ~sid:2 ~channel:1 ~ghost:2 0);
  Snapshot_unit.process_packet u ~now:1 (mk_data_packet ~sid:1 ~channel:1 ~ghost:1 1);
  (* sid going backwards on a FIFO channel is impossible: flagged. *)
  Alcotest.(check int) "violation counted" 1 (Snapshot_unit.fifo_violations u)

let test_unit_wraparound_rollover () =
  let cfg = { Snapshot_unit.variant_channel_state with max_sid = 7 } in
  let u, _ = mk_unit ~cfg () in
  (* Walk the ID all the way around the mod-8 space, one step at a time. *)
  for ghost = 1 to 20 do
    Snapshot_unit.process_initiation u ~now:ghost ~sid:(Wrap.wrap ~max_sid:7 ghost)
      ~ghost_sid:ghost
  done;
  Alcotest.(check int) "wrapped register" (Wrap.wrap ~max_sid:7 20)
    (Snapshot_unit.current_sid u);
  Alcotest.(check int) "unwrapped bookkeeping" 20 (Snapshot_unit.current_ghost_sid u)

let test_unit_slot_staleness () =
  let cfg = { Snapshot_unit.variant_channel_state with max_sid = 7 } in
  let u, _ = mk_unit ~cfg () in
  for ghost = 1 to 10 do
    Snapshot_unit.process_initiation u ~now:ghost ~sid:(Wrap.wrap ~max_sid:7 ghost)
      ~ghost_sid:ghost
  done;
  (* Slot for ghost 2 was overwritten by ghost 10 (same ring cell). *)
  Alcotest.(check (option (float 1e-9))) "stale slot unreadable" None
    (Snapshot_unit.read_slot u ~ghost_sid:2).Snapshot_unit.value;
  Alcotest.(check bool) "current slot readable" true
    ((Snapshot_unit.read_slot u ~ghost_sid:10).Snapshot_unit.value <> None)

let test_unit_neighbor_traffic () =
  let u, _ = mk_unit ~n_neighbors:3 () in
  for i = 0 to 4 do
    Snapshot_unit.process_packet u ~now:i (mk_data_packet ~sid:0 ~channel:1 ~ghost:0 i)
  done;
  Snapshot_unit.process_packet u ~now:9 (mk_data_packet ~sid:0 ~channel:2 ~ghost:0 9);
  let t = Snapshot_unit.neighbor_traffic u in
  Alcotest.(check int) "cpu zero" 0 t.(0);
  Alcotest.(check int) "channel 1" 5 t.(1);
  Alcotest.(check int) "channel 2" 1 t.(2)

let test_unit_reset () =
  let u, _ = mk_unit () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:2 ~ghost_sid:2;
  Snapshot_unit.process_packet u ~now:1 (mk_data_packet ~sid:2 ~channel:1 ~ghost:2 0);
  Snapshot_unit.reset u;
  Alcotest.(check int) "sid cleared" 0 (Snapshot_unit.current_sid u);
  Alcotest.(check int) "ghost cleared" 0 (Snapshot_unit.current_ghost_sid u);
  Alcotest.(check (option (float 1e-9))) "slots cleared" None
    (Snapshot_unit.read_slot u ~ghost_sid:2).Snapshot_unit.value

(* Differential property test: on schedules where snapshot IDs advance by
   at most one step at a time (the regime Speedlight guarantees consistent),
   the hardware-constrained unit must record exactly the same snapshot
   values and channel state as the idealized Figure-3 algorithm. *)
let differential_test ~wraparound =
  let name =
    Printf.sprintf "Speedlight unit == Fig.3 spec (%s)"
      (if wraparound then "wraparound mod 8" else "unbounded ids")
  in
  QCheck.Test.make ~name ~count:150
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, k) ->
      let rng = Rng.create (seed + (k * 7919)) in
      let epochs = 10 in
      let cfg =
        if wraparound then { Snapshot_unit.variant_channel_state with max_sid = 7 }
        else { Snapshot_unit.variant_channel_state with wraparound = false }
      in
      let counter = Counter.packet_count () in
      let sl, _ =
        ( Snapshot_unit.create
            ~id:(Unit_id.egress ~switch:0 ~port:0)
            ~cfg ~n_neighbors:(k + 1) ~counter
            ~notify:(fun _ -> ())
            (),
          () )
      in
      let ideal = Ideal_unit.create ~n_neighbors:k ~channel_state:true in
      let uid = ref 0 in
      let deliver ~stamp ~ch =
        incr uid;
        (* Ideal spec first (it reads the shared state notionally before
           the packet): its state is the packet count so far. *)
        let _ = Ideal_unit.on_receive ideal ~sender:ch ~pkt_sid:stamp ~contribution:1. in
        Ideal_unit.set_state ideal (Ideal_unit.state ideal +. 1.);
        let p =
          mk_data_packet
            ~sid:(if wraparound then Wrap.wrap ~max_sid:7 stamp else stamp)
            ~channel:(ch + 1) ~ghost:stamp !uid
        in
        Snapshot_unit.process_packet sl ~now:!uid p
      in
      (* Build per-channel FIFO schedules: every epoch, each channel sends
         a few in-flight packets stamped e-1 followed by >=1 stamped e. *)
      for e = 1 to epochs do
        let sends = ref [] in
        for ch = 0 to k - 1 do
          let pre = Rng.int rng 3 in
          for _ = 1 to pre do
            sends := (e - 1, ch) :: !sends
          done;
          for _ = 1 to 1 + Rng.int rng 3 do
            sends := (e, ch) :: !sends
          done
        done;
        (* Random interleaving that preserves per-channel FIFO order: sort
           stable by random keys per channel won't preserve order; instead
           pop randomly from per-channel queues. *)
        (* !sends lists each channel's stamps newest-first; prepending
           them again restores per-channel send order (pre, then new). *)
        let queues = Array.make k [] in
        List.iter (fun (st, ch) -> queues.(ch) <- st :: queues.(ch)) !sends;
        let remaining = ref (List.length !sends) in
        while !remaining > 0 do
          let ch = Rng.int rng k in
          match queues.(ch) with
          | [] -> ()
          | stamp :: rest ->
              queues.(ch) <- rest;
              decr remaining;
              deliver ~stamp ~ch
        done
      done;
      (* Compare every snapshot whose slot still survives: with wraparound
         the ring has modulus-many cells, so ghosts older than one modulus
         behind the current ID were overwritten (the control plane reads
         them out long before that in practice). *)
      let ok = ref true in
      let lo = if wraparound then Stdlib.max 1 (epochs - 7) else 1 in
      for i = lo to epochs do
        (match
           ( (Snapshot_unit.read_slot sl ~ghost_sid:i).Snapshot_unit.value,
             Ideal_unit.snapshot_value ideal ~sid:i )
         with
        | Some v, Some w -> if v <> w then ok := false
        | None, _ | _, None -> ok := false);
        let c_sl = (Snapshot_unit.read_slot sl ~ghost_sid:i).Snapshot_unit.channel in
        let c_id = Ideal_unit.channel_state_of ideal ~sid:i in
        if c_sl <> c_id then ok := false
      done;
      !ok
      && Snapshot_unit.current_ghost_sid sl = Ideal_unit.sid ideal
      && Snapshot_unit.fifo_violations sl = 0)

(* ------------------------------------------------------------------ *)
(* Cp_tracker *)

let mk_tracked ?(channel_state = true) ?(n_neighbors = 3) ?(excluded = []) () =
  let counter = Counter.packet_count () in
  let notifs = Queue.create () in
  let uid = Unit_id.ingress ~switch:0 ~port:0 in
  let u =
    Snapshot_unit.create ~id:uid
      ~cfg:
        (if channel_state then Snapshot_unit.variant_channel_state
         else Snapshot_unit.variant_wraparound)
      ~n_neighbors ~counter
      ~notify:(fun n -> Queue.push n notifs)
      ()
  in
  let reports = ref [] in
  let access =
    {
      Cp_tracker.read_slot = (fun ~ghost_sid -> Snapshot_unit.read_slot u ~ghost_sid);
      read_sid = (fun () -> Snapshot_unit.current_sid u);
      read_last_seen = (fun () -> Snapshot_unit.last_seen u);
    }
  in
  let tracker =
    Cp_tracker.create ~channel_state
      ~units:
        [ { Cp_tracker.uid; access; n_neighbors; excluded_neighbors = excluded } ]
      ~report:(fun r -> reports := r :: !reports)
      ()
  in
  let drain ~now =
    while not (Queue.is_empty notifs) do
      Cp_tracker.on_notify tracker ~now (Queue.pop notifs)
    done
  in
  (u, uid, tracker, reports, notifs, drain)

let test_tracker_completion_with_cs () =
  let u, uid, tracker, reports, _, drain = mk_tracked () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:1 ~ghost_sid:1;
  drain ~now:5;
  Alcotest.(check int) "not finished before channels catch up" 0
    (Cp_tracker.finished_through tracker uid);
  (* Both data channels deliver snapshot-1 markers. *)
  Snapshot_unit.process_packet u ~now:6 (mk_data_packet ~sid:1 ~channel:1 ~ghost:1 0);
  Snapshot_unit.process_packet u ~now:7 (mk_data_packet ~sid:1 ~channel:2 ~ghost:1 1);
  drain ~now:8;
  Alcotest.(check int) "finished" 1 (Cp_tracker.finished_through tracker uid);
  match !reports with
  | [ r ] ->
      Alcotest.(check bool) "consistent" true r.Report.consistent;
      Alcotest.(check int) "sid" 1 r.Report.sid
  | _ -> Alcotest.fail "expected exactly one report"

let test_tracker_skip_marked_inconsistent () =
  let u, uid, tracker, reports, _, drain = mk_tracked () in
  (* The unit jumps from 0 straight to 3 (e.g. initiations lost): skipped
     snapshots 1 and 2 can no longer collect channel state. *)
  Snapshot_unit.process_initiation u ~now:0 ~sid:3 ~ghost_sid:3;
  drain ~now:1;
  Snapshot_unit.process_packet u ~now:2 (mk_data_packet ~sid:3 ~channel:1 ~ghost:3 0);
  Snapshot_unit.process_packet u ~now:3 (mk_data_packet ~sid:3 ~channel:2 ~ghost:3 1);
  drain ~now:4;
  Alcotest.(check bool) "1 inconsistent" true (Cp_tracker.is_inconsistent tracker uid ~sid:1);
  Alcotest.(check bool) "2 inconsistent" true (Cp_tracker.is_inconsistent tracker uid ~sid:2);
  Alcotest.(check bool) "3 consistent" false (Cp_tracker.is_inconsistent tracker uid ~sid:3);
  let consistent, inconsistent =
    List.partition (fun (r : Report.t) -> r.Report.consistent) !reports
  in
  Alcotest.(check int) "one consistent report" 1 (List.length consistent);
  Alcotest.(check int) "two inconsistent reports" 2 (List.length inconsistent)

let test_tracker_no_cs_inference () =
  let u, uid, tracker, reports, _, drain = mk_tracked ~channel_state:false () in
  (* Jump 0 -> 3 without channel state: values for 1 and 2 are inferred
     from snapshot 3's register (Fig. 7 lines 19-21). *)
  Snapshot_unit.process_packet u ~now:1 (mk_data_packet ~sid:0 ~channel:1 ~ghost:0 0);
  Snapshot_unit.process_packet u ~now:2 (mk_data_packet ~sid:0 ~channel:1 ~ghost:0 1);
  Snapshot_unit.process_initiation u ~now:3 ~sid:3 ~ghost_sid:3;
  drain ~now:4;
  Alcotest.(check int) "finished through 3" 3 (Cp_tracker.finished_through tracker uid);
  let sorted = List.sort (fun a b -> compare a.Report.sid b.Report.sid) !reports in
  (match sorted with
  | [ r1; r2; r3 ] ->
      Alcotest.(check bool) "1 inferred" true r1.Report.inferred;
      Alcotest.(check bool) "2 inferred" true r2.Report.inferred;
      Alcotest.(check bool) "3 direct" false r3.Report.inferred;
      Alcotest.(check (option (float 1e-9))) "inferred value = later value"
        r3.Report.value r1.Report.value;
      Alcotest.(check (option (float 1e-9))) "value is pre-snapshot count"
        (Some 2.) r3.Report.value
  | _ -> Alcotest.fail "expected three reports");
  Alcotest.(check int) "no duplicates" 0 (Cp_tracker.duplicates_dropped tracker)

let test_tracker_duplicate_notifications_dropped () =
  let u, _, tracker, _, notifs, _ = mk_tracked () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:1 ~ghost_sid:1;
  let n = Queue.pop notifs in
  Cp_tracker.on_notify tracker ~now:1 n;
  Cp_tracker.on_notify tracker ~now:2 n;
  Alcotest.(check int) "second copy dropped" 1 (Cp_tracker.duplicates_dropped tracker)

let test_tracker_poll_recovers_lost_notifications () =
  let u, uid, tracker, reports, notifs, _ = mk_tracked () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:1 ~ghost_sid:1;
  Snapshot_unit.process_packet u ~now:1 (mk_data_packet ~sid:1 ~channel:1 ~ghost:1 0);
  Snapshot_unit.process_packet u ~now:2 (mk_data_packet ~sid:1 ~channel:2 ~ghost:1 1);
  (* All notifications dropped on the DP->CPU channel. *)
  Queue.clear notifs;
  Alcotest.(check int) "tracker blind" 0 (Cp_tracker.ctrl_sid tracker uid);
  Cp_tracker.poll tracker ~now:10;
  Alcotest.(check int) "poll found the ID" 1 (Cp_tracker.ctrl_sid tracker uid);
  Alcotest.(check int) "poll completed the snapshot" 1
    (Cp_tracker.finished_through tracker uid);
  Alcotest.(check int) "report emitted" 1 (List.length !reports)

let test_tracker_exclusion_unblocks () =
  let u, uid, tracker, _, _, drain = mk_tracked () in
  Snapshot_unit.process_initiation u ~now:0 ~sid:1 ~ghost_sid:1;
  (* Only channel 1 ever carries traffic. *)
  Snapshot_unit.process_packet u ~now:1 (mk_data_packet ~sid:1 ~channel:1 ~ghost:1 0);
  drain ~now:2;
  Alcotest.(check int) "stuck on idle channel 2" 0
    (Cp_tracker.finished_through tracker uid);
  Cp_tracker.exclude_neighbor tracker ~now:3 uid 2;
  Alcotest.(check bool) "marked excluded" true (Cp_tracker.is_excluded tracker uid 2);
  Alcotest.(check int) "completes after exclusion" 1
    (Cp_tracker.finished_through tracker uid)

let test_tracker_sync_window () =
  let u, _, tracker, _, notifs, _ = mk_tracked () in
  Snapshot_unit.process_initiation u ~now:100 ~sid:1 ~ghost_sid:1;
  Snapshot_unit.process_packet u ~now:150 (mk_data_packet ~sid:1 ~channel:1 ~ghost:1 0);
  Snapshot_unit.process_packet u ~now:170 (mk_data_packet ~sid:1 ~channel:2 ~ghost:1 1);
  while not (Queue.is_empty notifs) do
    Cp_tracker.on_notify tracker ~now:200 (Queue.pop notifs)
  done;
  match Cp_tracker.sync_window tracker ~sid:1 with
  | Some (lo, hi) ->
      Alcotest.(check int) "window lo" 100 lo;
      Alcotest.(check int) "window hi" 170 hi
  | None -> Alcotest.fail "no window recorded"

(* ------------------------------------------------------------------ *)
(* Observer *)

type fake_device = {
  fd_id : int;
  fd_units : Unit_id.t list;
  mutable fd_initiations : (int * Time.t) list;
  mutable fd_resends : int list;
}

let mk_fake_device id ~units =
  let fd = { fd_id = id; fd_units = units; fd_initiations = []; fd_resends = [] } in
  let dev =
    {
      Observer.device_id = id;
      units;
      initiate = (fun ~sid ~fire_at -> fd.fd_initiations <- (sid, fire_at) :: fd.fd_initiations);
      resend = (fun ~sid -> fd.fd_resends <- sid :: fd.fd_resends);
    }
  in
  (fd, dev)

let report ~uid ~sid =
  {
    Report.unit_id = uid;
    sid;
    value = Some 1.;
    channel = 0.;
    consistent = true;
    inferred = false;
    completed_at = 0;
  }

let take_snapshot_exn obs =
  match Observer.try_take_snapshot obs () with
  | Ok sid -> sid
  | Error e -> Alcotest.fail ("snapshot refused: " ^ Observer.error_to_string e)

let test_observer_assembly () =
  let engine = Engine.create () in
  let obs = Observer.create ~engine () in
  let u1 = Unit_id.ingress ~switch:0 ~port:0 in
  let u2 = Unit_id.egress ~switch:0 ~port:0 in
  let fd, dev = mk_fake_device 0 ~units:[ u1; u2 ] in
  Observer.register_device obs dev;
  let completions = ref [] in
  Observer.on_complete obs (fun s -> completions := s :: !completions);
  let sid = take_snapshot_exn obs in
  Alcotest.(check int) "first sid is 1" 1 sid;
  Alcotest.(check int) "initiation broadcast" 1 (List.length fd.fd_initiations);
  Observer.on_report obs (report ~uid:u1 ~sid);
  Alcotest.(check bool) "incomplete with one report" false
    (match Observer.result obs ~sid with Some s -> s.Observer.complete | None -> true);
  Observer.on_report obs (report ~uid:u2 ~sid);
  (match Observer.result obs ~sid with
  | Some s ->
      Alcotest.(check bool) "complete" true s.Observer.complete;
      Alcotest.(check bool) "consistent" true s.Observer.consistent;
      Alcotest.(check int) "two reports" 2 (Unit_id.Map.cardinal s.Observer.reports)
  | None -> Alcotest.fail "no result");
  Alcotest.(check int) "completion callback fired once" 1 (List.length !completions);
  Alcotest.(check int) "nothing outstanding" 0 (Observer.outstanding obs)

let test_observer_retry_and_exclusion () =
  let engine = Engine.create () in
  let obs =
    Observer.create ~engine ~retry_timeout:(Time.ms 10) ~max_retries:3 ()
  in
  let u1 = Unit_id.ingress ~switch:0 ~port:0 in
  let fd, dev = mk_fake_device 0 ~units:[ u1 ] in
  Observer.register_device obs dev;
  let sid = take_snapshot_exn obs in
  (* Never report: the observer must retry 3 times then exclude. *)
  Engine.run_until engine (Time.ms 200);
  Alcotest.(check int) "three resends" 3 (List.length fd.fd_resends);
  Alcotest.(check int) "retries counted" 3 (Observer.retries_sent obs);
  match Observer.result obs ~sid with
  | Some s ->
      Alcotest.(check bool) "finished by exclusion" true (Observer.completed obs ~sid);
      Alcotest.(check (list int)) "device excluded" [ 0 ] s.Observer.timed_out;
      Alcotest.(check bool) "not complete" false s.Observer.complete
  | None -> Alcotest.fail "no result after exclusion"

let test_observer_no_spurious_retry () =
  let engine = Engine.create () in
  let obs = Observer.create ~engine ~retry_timeout:(Time.ms 10) () in
  let u1 = Unit_id.ingress ~switch:0 ~port:0 in
  let fd, dev = mk_fake_device 0 ~units:[ u1 ] in
  Observer.register_device obs dev;
  let sid = take_snapshot_exn obs in
  Observer.on_report obs (report ~uid:u1 ~sid);
  Engine.run_until engine (Time.ms 100);
  Alcotest.(check int) "no resend after completion" 0 (List.length fd.fd_resends)

let test_observer_pacing_cap () =
  let engine = Engine.create () in
  let obs = Observer.create ~engine ~max_outstanding:2 () in
  let u1 = Unit_id.ingress ~switch:0 ~port:0 in
  let _, dev = mk_fake_device 0 ~units:[ u1 ] in
  Observer.register_device obs dev;
  ignore (take_snapshot_exn obs);
  ignore (take_snapshot_exn obs);
  Alcotest.(check bool) "third refused (wraparound pacing)" true
    (match Observer.try_take_snapshot obs () with
    | Error Observer.Pacing_full -> true
    | Ok _ | Error _ -> false)

let test_observer_spurious_report_ignored () =
  let engine = Engine.create () in
  let obs = Observer.create ~engine () in
  let u1 = Unit_id.ingress ~switch:0 ~port:0 in
  let _, dev = mk_fake_device 0 ~units:[ u1 ] in
  Observer.register_device obs dev;
  (* A report for a snapshot never scheduled (node-attachment jump-ahead)
     must be ignored. *)
  Observer.on_report obs (report ~uid:u1 ~sid:999);
  Alcotest.(check bool) "not recorded" true (Observer.result obs ~sid:999 = None)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ( "wrap",
        [
          Alcotest.test_case "basics" `Quick test_wrap_basics;
          Alcotest.test_case "compare" `Quick test_wrap_compare;
          Alcotest.test_case "rejects small" `Quick test_wrap_rejects_small;
          q test_wrap_compare_matches_ints;
          q test_wrap_unwrap_roundtrip;
          q test_wrap_unwrap_skew_window;
          Alcotest.test_case "unwrap edge cases" `Quick test_unwrap_edges;
        ] );
      ( "ideal_unit",
        [
          Alcotest.test_case "advance saves state" `Quick test_ideal_advance_saves_state;
          Alcotest.test_case "jump fills intermediates" `Quick
            test_ideal_jump_fills_intermediates;
          Alcotest.test_case "in-flight channel state" `Quick
            test_ideal_in_flight_channel_state;
          Alcotest.test_case "finished through" `Quick test_ideal_finished_through;
          Alcotest.test_case "initiate idempotent" `Quick test_ideal_initiate_idempotent;
        ] );
      ( "snapshot_unit",
        [
          Alcotest.test_case "initiation advances" `Quick test_unit_initiation_advances;
          Alcotest.test_case "duplicate initiation" `Quick
            test_unit_duplicate_initiation_ignored;
          Alcotest.test_case "trigger excluded from value" `Quick
            test_unit_saved_value_excludes_trigger;
          Alcotest.test_case "in-flight to current slot" `Quick
            test_unit_in_flight_goes_to_current_slot;
          Alcotest.test_case "header rewrite" `Quick test_unit_header_rewrite;
          Alcotest.test_case "headerless handling" `Quick test_unit_headerless_gets_header;
          Alcotest.test_case "last seen" `Quick test_unit_last_seen_tracking;
          Alcotest.test_case "fifo violation" `Quick test_unit_fifo_violation_detected;
          Alcotest.test_case "wraparound rollover" `Quick test_unit_wraparound_rollover;
          Alcotest.test_case "slot staleness" `Quick test_unit_slot_staleness;
          Alcotest.test_case "neighbor traffic" `Quick test_unit_neighbor_traffic;
          Alcotest.test_case "reset" `Quick test_unit_reset;
          q (differential_test ~wraparound:false);
          q (differential_test ~wraparound:true);
        ] );
      ( "cp_tracker",
        [
          Alcotest.test_case "completion w/ channel state" `Quick
            test_tracker_completion_with_cs;
          Alcotest.test_case "skip marked inconsistent" `Quick
            test_tracker_skip_marked_inconsistent;
          Alcotest.test_case "no-CS inference" `Quick test_tracker_no_cs_inference;
          Alcotest.test_case "duplicates dropped" `Quick
            test_tracker_duplicate_notifications_dropped;
          Alcotest.test_case "poll recovery" `Quick
            test_tracker_poll_recovers_lost_notifications;
          Alcotest.test_case "exclusion unblocks" `Quick test_tracker_exclusion_unblocks;
          Alcotest.test_case "sync window" `Quick test_tracker_sync_window;
        ] );
      ( "observer",
        [
          Alcotest.test_case "assembly" `Quick test_observer_assembly;
          Alcotest.test_case "retry + exclusion" `Quick test_observer_retry_and_exclusion;
          Alcotest.test_case "no spurious retry" `Quick test_observer_no_spurious_retry;
          Alcotest.test_case "pacing cap" `Quick test_observer_pacing_cap;
          Alcotest.test_case "spurious report ignored" `Quick
            test_observer_spurious_report_ignored;
        ] );
    ]

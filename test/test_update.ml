(* Tests for the timed-update subsystem (lib/update): the plan compiler's
   typed errors and drain logic, the arming semantics under PTP steps and
   holdover (exactly once, bit-identical at any shard count), the
   transition detectors on synthetic rounds with known answers, and the
   closed-loop acceptance bar — timed updates snapshot-certified atomic
   where the untimed baselines are caught mid-transition. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_topology
open Speedlight_net
open Speedlight_faults
open Speedlight_store
open Speedlight_query
open Speedlight_experiments
module U = Speedlight_update.Update
module Clock = Speedlight_clock.Clock
module Metrics = Speedlight_trace.Metrics

let leafs (ls : Topology.leaf_spine) =
  match ls.Topology.leaf_switches with
  | a :: b :: _ -> (a, b)
  | _ -> assert false

let port_toward topo ~sw ~peer =
  let found = ref None in
  for p = Topology.ports topo sw - 1 downto 0 do
    match Topology.peer_of topo ~switch:sw ~port:p with
    | Some (Topology.Switch_port (s', _)) when s' = peer -> found := Some p
    | _ -> ()
  done;
  Option.get !found

let cross_hosts topo ~not_on =
  List.filter
    (fun h -> fst (Topology.host_attachment topo ~host:h) <> not_on)
    (List.init (Topology.n_hosts topo) Fun.id)

(* A swap plan over the two leaves of the default testbed: leaf0 pins its
   cross-leaf destinations to spine0's port, leaf1 to spine1's. *)
let swap_target (ls : Topology.leaf_spine) net =
  let topo = Net.topology net in
  let leaf0, leaf1 = leafs ls in
  let spine0, spine1 =
    match ls.Topology.spine_switches with
    | a :: b :: _ -> (a, b)
    | _ -> assert false
  in
  let pins leaf spine =
    List.map
      (fun d -> (d, port_toward topo ~sw:leaf ~peer:spine))
      (cross_hosts topo ~not_on:leaf)
  in
  U.Reweight { pins = [ (leaf0, pins leaf0 spine0); (leaf1, pins leaf1 spine1) ] }

(* ------------------------------------------------------------------ *)
(* Typed errors *)
(* ------------------------------------------------------------------ *)

let test_error_empty_plan () =
  let _, net = Common.make_testbed () in
  (match U.compile ~net ~version:2 (U.Undrain []) with
  | Error U.Empty_plan -> ()
  | _ -> Alcotest.fail "Undrain [] must compile to Empty_plan");
  (match U.compile ~net ~version:2 (U.Reweight { pins = [] }) with
  | Error U.Empty_plan -> ()
  | _ -> Alcotest.fail "empty Reweight must compile to Empty_plan");
  let upd = U.create net in
  match U.execute upd { U.p_version = 2; p_mods = [] } U.Immediate with
  | Error U.Empty_plan -> ()
  | _ -> Alcotest.fail "executing an empty plan must fail with Empty_plan"

let test_error_unknown_switch () =
  let _, net = Common.make_testbed () in
  (match
     U.compile ~net ~version:2 (U.Reweight { pins = [ (99, [ (0, 1) ]) ] })
   with
  | Error (U.Unknown_switch 99) -> ()
  | _ -> Alcotest.fail "out-of-range pin switch must be rejected");
  (match U.compile ~net ~version:2 (U.Drain_switch 42) with
  | Error (U.Unknown_switch 42) -> ()
  | _ -> Alcotest.fail "draining an unknown switch must be rejected");
  let upd = U.create net in
  let plan =
    { U.p_version = 2; p_mods = [ { U.fm_switch = -1; fm_routes = [ (0, 1) ]; fm_clear = false } ] }
  in
  match U.execute upd plan U.Immediate with
  | Error (U.Unknown_switch -1) -> ()
  | _ -> Alcotest.fail "executing a plan against switch -1 must be rejected"

let test_error_trigger_in_past () =
  let ls, net = Common.make_testbed () in
  Net.run_until net (Time.ms 1);
  let upd = U.create net in
  let plan =
    match U.compile ~net ~version:2 (swap_target ls net) with
    | Ok p -> p
    | Error e -> Alcotest.fail (U.error_to_string e)
  in
  (match U.execute upd plan (U.Timed { at = Time.us 500 }) with
  | Error (U.Trigger_in_past { at; now }) ->
      Alcotest.(check int) "reported deadline" (Time.us 500) at;
      Alcotest.(check int) "reported now" (Time.ms 1) now
  | _ -> Alcotest.fail "a trigger at or before now must be rejected");
  Alcotest.(check int) "nothing launched" 0 (U.executed upd)

(* ------------------------------------------------------------------ *)
(* Compiler *)
(* ------------------------------------------------------------------ *)

let test_compile_drain_switch () =
  let ls, net = Common.make_testbed () in
  let topo = Net.topology net in
  let leaf0, leaf1 = leafs ls in
  let spine0, spine1 =
    match ls.Topology.spine_switches with
    | a :: b :: _ -> (a, b)
    | _ -> assert false
  in
  let plan =
    match U.compile ~net ~version:3 (U.Drain_switch spine0) with
    | Ok p -> p
    | Error e -> Alcotest.fail (U.error_to_string e)
  in
  Alcotest.(check int) "version carried" 3 plan.U.p_version;
  (* Both leaves transit spines for cross-leaf traffic, so both get a
     flow-mod; every pinned port must face the other spine. *)
  List.iter
    (fun leaf ->
      match
        List.find_opt (fun m -> m.U.fm_switch = leaf) plan.U.p_mods
      with
      | None -> Alcotest.failf "leaf %d missing from the drain plan" leaf
      | Some m ->
          let away = port_toward topo ~sw:leaf ~peer:spine1 in
          Alcotest.(check int)
            "drains every cross-leaf destination"
            (List.length (cross_hosts topo ~not_on:leaf))
            (List.length m.U.fm_routes);
          List.iter
            (fun (_, p) ->
              Alcotest.(check int) "pinned away from the drained spine" away p)
            m.U.fm_routes)
    [ leaf0; leaf1 ];
  (* Undrain clears the pins again. *)
  match U.compile ~net ~version:4 (U.Undrain [ leaf0; leaf1 ]) with
  | Ok p ->
      List.iter (fun m -> Alcotest.(check bool) "clear set" true m.U.fm_clear) p.U.p_mods
  | Error e -> Alcotest.fail (U.error_to_string e)

let test_compile_drain_link () =
  let ls, net = Common.make_testbed () in
  let topo = Net.topology net in
  let leaf0, _ = leafs ls in
  let up =
    match ls.Topology.uplink_ports with
    | (_, p :: _) :: _ -> p
    | _ -> assert false
  in
  match U.compile ~net ~version:2 (U.Drain_link { switch = leaf0; port = up }) with
  | Error e -> Alcotest.fail (U.error_to_string e)
  | Ok p ->
      Alcotest.(check int) "one switch touched" 1 (List.length p.U.p_mods);
      let m = List.hd p.U.p_mods in
      Alcotest.(check int) "on the named switch" leaf0 m.U.fm_switch;
      Alcotest.(check int)
        "every cross-leaf destination re-pinned"
        (List.length (cross_hosts topo ~not_on:leaf0))
        (List.length m.U.fm_routes);
      List.iter
        (fun (_, port) ->
          if port = up then Alcotest.fail "a route still uses the drained port")
        m.U.fm_routes

(* ------------------------------------------------------------------ *)
(* Arming semantics: PTP chaos between arm and fire, at any shard count *)
(* ------------------------------------------------------------------ *)

(* Issue a timed swap at 1 ms with trigger 6 ms, racing [events] against
   the armed window; returns the per-switch apply times plus the run
   digest, which the determinism test compares across shard counts. *)
let timed_run ~shards ~events () =
  let cfg = Config.default |> Config.with_seed 11 in
  let ls, net = Common.make_testbed ~cfg ~shards () in
  let upd = U.create ~proc_delay:(Dist.constant 0.) net in
  if events <> [] then ignore (Faults.install ~net { Faults.seed = 11; events });
  let plan =
    match U.compile ~net ~version:2 (swap_target ls net) with
    | Ok p -> p
    | Error e -> Alcotest.fail (U.error_to_string e)
  in
  Net.run_until net (Time.ms 1);
  let h =
    match U.execute upd plan (U.Timed { at = Time.ms 6 }) with
    | Ok h -> h
    | Error e -> Alcotest.fail (U.error_to_string e)
  in
  Net.run_until net (Time.ms 12);
  let applied =
    List.map (fun s -> (s, Option.get (U.applied_at h ~switch:s))) (U.targets h)
  in
  (net, upd, h, applied)

let check_exactly_once upd h =
  let n = List.length (U.targets h) in
  Alcotest.(check int) "armed once per target" n (U.armed_total upd);
  Alcotest.(check int) "fired exactly once per target" n (U.fired_total upd);
  Alcotest.(check int) "nothing expired" 0 (U.expired_total upd)

let test_clock_step_between_arm_and_fire () =
  let ls, _ = Common.make_testbed () in
  let leaf0, _ = leafs ls in
  (* Backward step: the latched wakeup finds the local clock short of the
     deadline and must re-arm — never fire twice, never expire. *)
  let events =
    [
      {
        Faults.at = Time.ms 3;
        action = Faults.Clock_step { switch = leaf0; delta_ns = -200_000. };
      };
    ]
  in
  let net, upd, h, applied = timed_run ~shards:1 ~events () in
  check_exactly_once upd h;
  Alcotest.(check bool)
    "the step actually raced the armed window" true
    (Clock.steps (Control_plane.clock (Net.control_plane net leaf0)) > 0);
  let t0 = List.assoc leaf0 applied in
  let others = List.filter (fun (s, _) -> s <> leaf0) applied in
  List.iter
    (fun (_, t) ->
      Alcotest.(check bool)
        "stepped switch fires late by about the step" true
        (Time.sub t0 t > Time.us 150 && Time.sub t0 t < Time.us 260))
    others

let test_holdover_between_arm_and_fire () =
  let ls, _ = Common.make_testbed () in
  let leaf0, _ = leafs ls in
  let events =
    [
      {
        Faults.at = Time.ms 2;
        action = Faults.Clock_holdover { switch = leaf0; on = true };
      };
      {
        Faults.at = Time.ms 9;
        action = Faults.Clock_holdover { switch = leaf0; on = false };
      };
    ]
  in
  let _, upd, h, applied = timed_run ~shards:1 ~events () in
  check_exactly_once upd h;
  List.iter
    (fun (_, t) ->
      Alcotest.(check bool)
        "fires near the trigger despite holdover" true
        (Time.sub t (Time.ms 6) < Time.us 100))
    applied

let test_armed_fire_deterministic_across_shards () =
  let events =
    [
      {
        Faults.at = Time.ms 3;
        action = Faults.Clock_step { switch = 0; delta_ns = -200_000. };
      };
    ]
  in
  let runs =
    List.map
      (fun shards ->
        let net, upd, h, applied = timed_run ~shards ~events () in
        check_exactly_once upd h;
        (applied, Common.run_digest net ~sids:[]))
      [ 1; 2; 4 ]
  in
  match runs with
  | (a1, d1) :: rest ->
      List.iteri
        (fun i (a, d) ->
          Alcotest.(check bool)
            (Printf.sprintf "apply times identical (run %d)" (i + 2))
            true (a = a1);
          Alcotest.(check string)
            (Printf.sprintf "run digest identical (run %d)" (i + 2))
            d1 d)
        rest
  | [] -> assert false

let test_expired_on_cp_crash () =
  let ls, net = Common.make_testbed () in
  let leaf0, _ = leafs ls in
  let upd = U.create ~proc_delay:(Dist.constant 0.) net in
  ignore
    (Faults.install ~net
       {
         Faults.seed = 7;
         events =
           [ { Faults.at = Time.ms 3; action = Faults.Cp_crash { switch = leaf0 } } ];
       });
  let plan =
    match U.compile ~net ~version:2 (swap_target ls net) with
    | Ok p -> p
    | Error e -> Alcotest.fail (U.error_to_string e)
  in
  Net.run_until net (Time.ms 1);
  let h =
    match U.execute upd plan (U.Timed { at = Time.ms 6 }) with
    | Ok h -> h
    | Error e -> Alcotest.fail (U.error_to_string e)
  in
  Net.run_until net (Time.ms 12);
  Alcotest.(check int) "crashed CP expired its trigger" 1 (U.expired_total upd);
  Alcotest.(check bool) "crashed switch never applied" true
    (U.applied_at h ~switch:leaf0 = None);
  Alcotest.(check int) "the other switch fired" 1 (U.fired_total upd)

(* ------------------------------------------------------------------ *)
(* Transition detectors on synthetic rounds *)
(* ------------------------------------------------------------------ *)

let probe s = Unit_id.ingress ~switch:s ~port:0

let mk_round ~sid ~fire ?(complete = true) versions =
  {
    Store.sid;
    fire_time = fire;
    staleness = None;
    complete;
    consistent = true;
    timed_out = [];
    label = Store.Unaudited;
    records =
      Array.of_list
        (List.mapi
           (fun s v ->
             {
               Store.r_uid = probe s;
               r_value = Some (float_of_int v);
               r_channel = 0.;
               r_consistent = true;
               r_inferred = false;
             })
           versions);
  }

(* Two-switch model keyed on snapshotted FIB versions: at version 1 the
   state is consistent (0 delivers, 1 forwards to 0); a round that catches
   0 at version 2 with 1 still at 1 shows the 0 -> 1 -> 0 loop; version 3
   means the destination is unrouted. *)
let hop ~versions ~switch ~dst_host:_ =
  match versions switch with
  | 1 -> if switch = 0 then Query.Canned.Deliver else Query.Canned.Forward 0
  | 2 -> if switch = 0 then Query.Canned.Forward 1 else Query.Canned.Forward 0
  | _ -> Query.Canned.No_route

let test_canned_loops_and_blackholes () =
  let q =
    Query.of_rounds
      [
        mk_round ~sid:1 ~fire:(Time.ms 10) [ 1; 1 ];
        mk_round ~sid:2 ~fire:(Time.ms 20) [ 2; 1 ];
        mk_round ~sid:3 ~fire:(Time.ms 30) [ 3; 3 ];
        mk_round ~sid:4 ~fire:(Time.ms 40) ~complete:false [ 2; 1 ];
      ]
  in
  let switches = [ 0; 1 ] and hosts = [ 0 ] in
  Alcotest.(check (list (pair int int)))
    "loops per complete round"
    [ (1, 0); (2, 2); (3, 0) ]
    (Query.Canned.loops ~probe ~switches ~hosts ~hop q);
  Alcotest.(check (list (pair int int)))
    "blackholes per complete round"
    [ (1, 0); (2, 0); (3, 2) ]
    (Query.Canned.blackholes ~probe ~switches ~hosts ~hop q)

(* ------------------------------------------------------------------ *)
(* Spread: timed vs untimed *)
(* ------------------------------------------------------------------ *)

let test_timed_spread_beats_immediate () =
  let spread_of strategy =
    let cfg = Config.default |> Config.with_seed 23 in
    let ls, net = Common.make_testbed ~cfg () in
    let upd = U.create net in
    let plan =
      match U.compile ~net ~version:2 (swap_target ls net) with
      | Ok p -> p
      | Error e -> Alcotest.fail (U.error_to_string e)
    in
    Net.run_until net (Time.ms 1);
    let h =
      match U.execute upd plan strategy with
      | Ok h -> h
      | Error e -> Alcotest.fail (U.error_to_string e)
    in
    Net.run_until net (Time.ms 12);
    match U.spread h with
    | Some s -> s
    | None -> Alcotest.fail "spread unmeasurable"
  in
  let timed = spread_of (U.Timed { at = Time.ms 6 }) in
  let untimed = spread_of U.Immediate in
  Alcotest.(check bool)
    (Printf.sprintf "timed spread %d ns bounded by clock error + jitter" timed)
    true (timed < Time.us 20);
  Alcotest.(check bool)
    (Printf.sprintf "untimed spread %d ns set by installation variance" untimed)
    true
    (untimed > 10 * timed && untimed > Time.us 100)

(* ------------------------------------------------------------------ *)
(* Closed loop and shard equivalence, through the experiment harness *)
(* ------------------------------------------------------------------ *)

let test_closed_loop_timed_atomic () =
  let p =
    Update.run_point ~quick:true ~seed:47 ~scenario:Update.Reweight_swap
      ~mode:Update.Timed_mode ()
  in
  Alcotest.(check string) "timed reweight is atomic" "atomic" p.Update.pt_outcome;
  Alcotest.(check int) "both targets fired" 2 p.Update.pt_fired;
  Alcotest.(check bool)
    (Printf.sprintf "spread %.1f us within clock error + jitter"
       p.Update.pt_spread_us)
    true
    (p.Update.pt_spread_us < 20.)

let test_closed_loop_untimed_anomaly () =
  let p =
    Update.run_point ~quick:true ~seed:47 ~scenario:Update.Reroute_repair
      ~mode:Update.Staged_mode ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "staged reroute caught mid-transition (%s)"
       p.Update.pt_outcome)
    true
    (String.length p.Update.pt_outcome >= 9
    && String.sub p.Update.pt_outcome 0 9 = "transient")

let test_run_point_shard_equivalence () =
  List.iter
    (fun (scenario, mode) ->
      let ps =
        List.map
          (fun shards ->
            Update.run_point ~quick:true ~shards ~seed:47 ~scenario ~mode ())
          [ 1; 2; 4 ]
      in
      match ps with
      | p1 :: rest ->
          List.iter
            (fun p ->
              Alcotest.(check string)
                "run digest identical across shard counts" p1.Update.pt_digest
                p.Update.pt_digest;
              Alcotest.(check string)
                "audit outcome identical across shard counts"
                p1.Update.pt_outcome p.Update.pt_outcome)
            rest
      | [] -> assert false)
    [
      (Update.Reweight_swap, Update.Timed_mode);
      (Update.Reroute_repair, Update.Staged_mode);
    ]

(* ------------------------------------------------------------------ *)
(* Metrics *)
(* ------------------------------------------------------------------ *)

let test_metrics_registration () =
  let ls, net = Common.make_testbed () in
  let upd = U.create ~proc_delay:(Dist.constant 0.) net in
  let m = Metrics.create () in
  U.register_metrics upd m;
  let get name = List.assoc name (Metrics.snapshot m) in
  Alcotest.(check (float 0.)) "no update yet" 0. (get "update.executed");
  Alcotest.(check bool) "spread gauge starts nan" true
    (Float.is_nan (get "update.spread_ns"));
  let plan =
    match U.compile ~net ~version:2 (swap_target ls net) with
    | Ok p -> p
    | Error e -> Alcotest.fail (U.error_to_string e)
  in
  Net.run_until net (Time.ms 1);
  (match U.execute upd plan (U.Timed { at = Time.ms 6 }) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (U.error_to_string e));
  Net.run_until net (Time.ms 12);
  Alcotest.(check (float 0.)) "executed" 1. (get "update.executed");
  Alcotest.(check (float 0.)) "armed" 2. (get "update.armed");
  Alcotest.(check (float 0.)) "fired" 2. (get "update.fired");
  Alcotest.(check bool) "spread gauge measurable" true
    (not (Float.is_nan (get "update.spread_ns")))

let () =
  Alcotest.run "update"
    [
      ( "errors",
        [
          Alcotest.test_case "empty plan" `Quick test_error_empty_plan;
          Alcotest.test_case "unknown switch" `Quick test_error_unknown_switch;
          Alcotest.test_case "trigger in past" `Quick test_error_trigger_in_past;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "drain switch" `Quick test_compile_drain_switch;
          Alcotest.test_case "drain link" `Quick test_compile_drain_link;
        ] );
      ( "arming",
        [
          Alcotest.test_case "clock step between arm and fire" `Quick
            test_clock_step_between_arm_and_fire;
          Alcotest.test_case "holdover between arm and fire" `Quick
            test_holdover_between_arm_and_fire;
          Alcotest.test_case "deterministic at 1/2/4 shards" `Quick
            test_armed_fire_deterministic_across_shards;
          Alcotest.test_case "expired on CP crash" `Quick test_expired_on_cp_crash;
        ] );
      ( "detectors",
        [
          Alcotest.test_case "loops and blackholes" `Quick
            test_canned_loops_and_blackholes;
        ] );
      ( "spread",
        [
          Alcotest.test_case "timed beats immediate" `Quick
            test_timed_spread_beats_immediate;
        ] );
      ( "closed-loop",
        [
          Alcotest.test_case "timed reweight atomic" `Quick
            test_closed_loop_timed_atomic;
          Alcotest.test_case "untimed reroute anomalous" `Quick
            test_closed_loop_untimed_anomaly;
          Alcotest.test_case "shard equivalence" `Quick
            test_run_point_shard_equivalence;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registration" `Quick test_metrics_registration ] );
    ]

(* Randomized scenario fuzzer: pure seed -> scenario derivation,
   repro-file round-tripping, campaign determinism, and — with the
   deliberately broken marker-suppression protocol — that the oracle
   battery bites and the shrinker reduces failures to minimal
   reproducers that replay to the same failure. *)

module F = Speedlight_fuzz.Fuzz

(* ------------------------------------------------------------------ *)
(* Derivation and serialization *)

let test_of_seed_pure () =
  List.iter
    (fun seed ->
      let a = F.of_seed seed and b = F.of_seed seed in
      Alcotest.(check bool) "same seed, same scenario" true (a = b))
    [ 0; 1; 42; 12345; max_int / 3 ];
  let a = F.of_seed 1 and b = F.of_seed 2 in
  Alcotest.(check bool) "different seeds differ" false (a = b)

let test_roundtrip () =
  for i = 0 to 99 do
    let sc = F.of_seed (F.campaign_seed ~seed:11 i) in
    match F.of_string (F.to_string sc) with
    | Error e -> Alcotest.failf "round-trip parse error: %s" e
    | Ok sc' ->
        if sc' <> sc then
          Alcotest.failf "round-trip changed the scenario:@.%s@.vs@.%s"
            (F.to_string sc) (F.to_string sc')
  done

let test_of_string_errors () =
  let bad s =
    match F.of_string s with
    | Ok _ -> Alcotest.failf "parsed invalid repro: %S" s
    | Error _ -> ()
  in
  bad "";
  bad "not-a-repro\nseed 1\n";
  bad "speedlight-fuzz-repro v1\nseed 1\n";
  (* missing topo/... *)
  bad "speedlight-fuzz-repro v1\nseed 1\ntopo leaf_spine 2 1 1\nworkload memcache\nsnap 5 4 2 200\nshards 3\n";
  bad
    "speedlight-fuzz-repro v1\nseed x\ntopo leaf_spine 2 1 1\nworkload memcache\nsnap 5 4 2 200\n"

(* ------------------------------------------------------------------ *)
(* Campaigns: all oracles pass on main, and verdicts are deterministic *)

let test_campaigns_pass_and_deterministic () =
  let run () = F.run_campaigns ~seed:42 ~count:12 () in
  let a = run () in
  List.iter
    (fun cf ->
      Alcotest.failf "campaign %d failed [%s]: %s" cf.F.cf_index
        (F.oracle_name cf.F.cf_failure.F.f_oracle)
        cf.F.cf_failure.F.f_detail)
    a.F.su_failures;
  let b = run () in
  Alcotest.(check string) "verdict digest deterministic" a.F.su_digest b.F.su_digest;
  Alcotest.(check int) "campaign count" 12 a.F.su_campaigns

(* ------------------------------------------------------------------ *)
(* Broken protocol: the oracles bite, the shrinker minimizes *)

(* Scan seed-derived campaigns with marker handling suppressed in every
   snapshot unit until the auditor catches a false-consistent cut. The
   scan is deterministic; the bound only caps work if the derivation
   ever changes the detection density. *)
let find_broken_failure () =
  let rec go i =
    if i >= 60 then
      Alcotest.fail "broken marker protocol survived 60 campaigns undetected"
    else
      let sc = F.of_seed (F.campaign_seed ~seed:7 i) in
      match F.run_scenario ~break_marker:true sc with
      | Ok _ -> go (i + 1)
      | Error f -> (sc, f)
  in
  go 0

let test_broken_marker_shrinks () =
  let sc, f = find_broken_failure () in
  Alcotest.(check string)
    "broken marker is caught as a false-consistent cut" "false_consistent_cut"
    (F.oracle_name f.F.f_oracle);
  let sh = F.shrink ~break_marker:true sc f in
  let m = sh.F.sh_scenario in
  Alcotest.(check bool)
    "shrunk failure keeps the oracle" true
    (sh.F.sh_failure.F.f_oracle = f.F.f_oracle);
  Alcotest.(check bool)
    "at most one chaos event survives shrinking" true
    (List.length m.F.sc_chaos <= 1);
  Alcotest.(check bool)
    "no update step survives shrinking" true (m.F.sc_updates = []);
  (* Minimality: every topology-halving candidate of the reproducer
     either is the reproducer itself (already at the floor) or no longer
     reproduces — i.e. this is the smallest reproducing topology along
     the shrinker's moves. *)
  let smaller =
    match m.F.sc_topo with
    | F.Leaf_spine { leaves; spines; hosts_per_leaf } ->
        [
          F.Leaf_spine { leaves = max 2 (leaves / 2); spines; hosts_per_leaf };
          F.Leaf_spine { leaves; spines = max 1 (spines / 2); hosts_per_leaf };
          F.Leaf_spine { leaves; spines; hosts_per_leaf = max 1 (hosts_per_leaf / 2) };
        ]
    | F.Fat_tree { k; hosts_per_edge } ->
        [ F.Fat_tree { k; hosts_per_edge = max 1 (hosts_per_edge / 2) } ]
    | F.Clos2 { leaves; spines; hosts_per_leaf } ->
        [
          F.Clos2 { leaves = max 2 (leaves / 2); spines; hosts_per_leaf };
          F.Clos2 { leaves; spines = max 1 (spines / 2); hosts_per_leaf };
          F.Clos2 { leaves; spines; hosts_per_leaf = max 1 (hosts_per_leaf / 2) };
        ]
  in
  List.iter
    (fun t ->
      if t <> m.F.sc_topo then
        match F.run_scenario ~break_marker:true { m with F.sc_topo = t } with
        | Error f' when f'.F.f_oracle = f.F.f_oracle ->
            Alcotest.fail "a smaller topology still reproduces: not minimal"
        | _ -> ())
    smaller;
  (* The reproducer round-trips through the seed-file format and replays
     to the same failure. *)
  match F.of_string (F.to_string m) with
  | Error e -> Alcotest.failf "reproducer does not parse: %s" e
  | Ok m' -> (
      Alcotest.(check bool) "reproducer round-trips" true (m' = m);
      match F.run_scenario ~break_marker:true m' with
      | Ok _ -> Alcotest.fail "reproducer replayed clean"
      | Error f' ->
          Alcotest.(check string) "replay fails the same oracle"
            (F.oracle_name f.F.f_oracle)
            (F.oracle_name f'.F.f_oracle));
  (* And without the broken protocol the same scenario passes: the
     failure is the injected bug, not the scenario. *)
  match F.run_scenario m with
  | Ok _ -> ()
  | Error f' ->
      Alcotest.failf "reproducer fails even with markers intact [%s]: %s"
        (F.oracle_name f'.F.f_oracle) f'.F.f_detail

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ( "derivation",
        [
          Alcotest.test_case "of_seed pure" `Quick test_of_seed_pure;
          Alcotest.test_case "repro round-trip" `Quick test_roundtrip;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "pass and deterministic" `Quick
            test_campaigns_pass_and_deterministic;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "broken marker shrinks to minimal repro" `Quick
            test_broken_marker_shrinks;
        ] );
    ]

(* Fault-injection subsystem: Gilbert–Elliott chain determinism, plan
   validation, injected-fault behavior (flaps, loss, CP crashes), and the
   headline property — a fault plan fires identically and yields a
   bit-identical run under serial and sharded execution. *)

open Speedlight_sim
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_faults
open Speedlight_experiments

(* ------------------------------------------------------------------ *)
(* Gilbert–Elliott *)

let test_ge_deterministic () =
  let mk () = Gilbert.create ~rng:(Rng.create 99) Gilbert.default_burst in
  let a = mk () and b = mk () in
  let seq t = List.init 5_000 (fun _ -> Gilbert.drop t) in
  Alcotest.(check bool) "same seed, same loss pattern" true (seq a = seq b);
  Alcotest.(check int) "packets counted" 5_000 (Gilbert.packets a);
  Alcotest.(check int) "losses agree" (Gilbert.losses a) (Gilbert.losses b)

let test_ge_expected_loss () =
  let p = Gilbert.default_burst in
  let t = Gilbert.create ~rng:(Rng.create 7) p in
  let n = 200_000 in
  for _ = 1 to n do
    ignore (Gilbert.drop t)
  done;
  let measured = float_of_int (Gilbert.losses t) /. float_of_int n in
  let expected = Gilbert.expected_loss p in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f ~ stationary %.4f" measured expected)
    true
    (Float.abs (measured -. expected) < 0.005)

let test_ge_validate () =
  let bad = { Gilbert.default_burst with Gilbert.loss_bad = 1.5 } in
  (match Gilbert.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "loss_bad = 1.5 accepted");
  match Gilbert.validate Gilbert.default_burst with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default params rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Plans on the testbed *)

let make_testbed ?(cfg = Config.default) ?(shards = 1) () =
  Common.make_testbed ~scaled:true ~cfg ~shards ()

let start_uniform ?(rate = 4_000.) net (ls : Topology.leaf_spine) ~until =
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  Speedlight_workload.Apps.Uniform.run ~engine:(Net.engine net) ~rng:(Net.fresh_rng net) ~send
    ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server)
    ~rate_pps:rate ~pkt_size:1000 ~until

let first_uplink (ls : Topology.leaf_spine) =
  match ls.Topology.uplink_ports with
  | (l, p :: _) :: _ -> (l, p)
  | _ -> assert false

let test_validate_rejects () =
  let _ls, net = make_testbed () in
  let reject name events =
    match Faults.validate ~net { Faults.seed = 1; events } with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s accepted" name
  in
  reject "switch out of range"
    [ { Faults.at = Time.ms 1; action = Faults.Cp_crash { switch = 99 } } ];
  reject "host port is not a wire"
    [
      {
        Faults.at = Time.ms 1;
        action = Faults.Link_down { switch = 0; port = 999 };
      };
    ];
  reject "latency factor < 1"
    [
      {
        Faults.at = Time.ms 1;
        action = Faults.Link_latency { switch = 0; port = 0; factor = 0.5 };
      };
    ];
  reject "negative time"
    [ { Faults.at = -5; action = Faults.Cp_crash { switch = 0 } } ]

let test_link_down_drops () =
  let ls, net = make_testbed () in
  let sw, port = first_uplink ls in
  start_uniform net ls ~until:(Time.ms 60);
  let plan =
    {
      Faults.seed = 3;
      events =
        [
          { Faults.at = Time.ms 20; action = Faults.Link_down { switch = sw; port } };
          { Faults.at = Time.ms 40; action = Faults.Link_up { switch = sw; port } };
        ];
    }
  in
  let f = Faults.install ~net plan in
  Net.run_until net (Time.ms 80);
  Alcotest.(check int) "both events fired" 2 (Faults.fired_count f);
  let d = Net.fault_drops net in
  Alcotest.(check bool) "wire drops counted" true (d.Net.fd_wire > 0);
  Alcotest.(check bool) "traffic still flows" true (Net.delivered net > 0)

let test_wire_burst_loss () =
  let ls, net = make_testbed () in
  let sw, port = first_uplink ls in
  start_uniform net ls ~until:(Time.ms 60);
  let plan =
    {
      Faults.seed = 5;
      events =
        [
          {
            Faults.at = Time.ms 5;
            action =
              Faults.Wire_loss
                {
                  switch = sw;
                  port;
                  ge =
                    Some
                      {
                        Gilbert.p_good_to_bad = 0.2;
                        p_bad_to_good = 0.2;
                        loss_good = 0.;
                        loss_bad = 0.8;
                      };
                };
          };
        ];
    }
  in
  let f = Faults.install ~net plan in
  Net.run_until net (Time.ms 80);
  (match Faults.ge_stats f with
  | [ (idx, pkts, losses) ] ->
      Alcotest.(check int) "chain is event 0" 0 idx;
      Alcotest.(check bool) "chain saw packets" true (pkts > 100);
      Alcotest.(check bool) "chain dropped some" true (losses > 0)
  | l -> Alcotest.failf "expected one chain, got %d" (List.length l));
  Alcotest.(check bool) "drops tallied on the net" true
    (Net.injected_drops net > 0)

let test_cp_crash_restart () =
  let ls, net = make_testbed () in
  start_uniform net ls ~until:(Time.ms 200);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 15) (fun () ->
         Net.auto_exclude_idle net));
  let plan =
    {
      Faults.seed = 11;
      events =
        [
          { Faults.at = Time.ms 60; action = Faults.Cp_crash { switch = 0 } };
          { Faults.at = Time.ms 90; action = Faults.Cp_restart { switch = 0 } };
        ];
    }
  in
  ignore (Faults.install ~net plan);
  let engine = Net.engine net in
  let sids = ref [] in
  for i = 0 to 5 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 20) (i * Time.ms 25))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error e ->
               Alcotest.fail
                 ("snapshot refused: " ^ Observer.error_to_string e)))
  done;
  Net.run_until net (Time.ms 600);
  let cp = Net.control_plane net 0 in
  Alcotest.(check int) "one crash recorded" 1 (Control_plane.crashes cp);
  Alcotest.(check bool) "back up" false (Control_plane.is_down cp);
  (* Liveness: snapshots taken after the restart still complete. *)
  let last = List.hd !sids in
  match Net.result net ~sid:last with
  | Some s -> Alcotest.(check bool) "post-restart snapshot completes" true
                s.Observer.complete
  | None -> Alcotest.fail "post-restart snapshot missing"

(* ------------------------------------------------------------------ *)
(* The headline: serial and sharded runs inject identical faults and
   produce bit-identical results. *)

let chaos_run ~shards =
  let cfg = Config.default |> Config.with_seed 21 in
  let ls, net = make_testbed ~cfg ~shards () in
  start_uniform net ls ~until:(Time.ms 120);
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let plan =
    Chaos.plan ls ~intensity:0.8 ~seed:21 ~t0:(Time.ms 20)
      ~duration:(Time.ms 100)
  in
  let f = Faults.install ~net plan in
  let engine = Net.engine net in
  let sids = ref [] in
  for i = 0 to 7 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 20) (i * Time.ms 12))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error _ -> ()))
  done;
  Net.run_until net (Time.ms 400);
  (Faults.digest f, Common.run_digest net ~sids:(List.rev !sids))

let test_sharded_fault_equivalence () =
  let fd1, rd1 = chaos_run ~shards:1 in
  let fd2, rd2 = chaos_run ~shards:2 in
  let fd4, rd4 = chaos_run ~shards:4 in
  Alcotest.(check string) "fault digest 1 = 2 shards" fd1 fd2;
  Alcotest.(check string) "fault digest 1 = 4 shards" fd1 fd4;
  Alcotest.(check string) "run digest 1 = 2 shards" rd1 rd2;
  Alcotest.(check string) "run digest 1 = 4 shards" rd1 rd4

let () =
  Alcotest.run "faults"
    [
      ( "gilbert",
        [
          Alcotest.test_case "deterministic" `Quick test_ge_deterministic;
          Alcotest.test_case "stationary loss rate" `Quick test_ge_expected_loss;
          Alcotest.test_case "validation" `Quick test_ge_validate;
        ] );
      ( "plans",
        [
          Alcotest.test_case "validate rejects bad plans" `Quick
            test_validate_rejects;
          Alcotest.test_case "link flap drops and recovers" `Quick
            test_link_down_drops;
          Alcotest.test_case "wire burst loss" `Quick test_wire_burst_loss;
          Alcotest.test_case "cp crash + restart" `Quick test_cp_crash_restart;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "fault plan bit-identical at 1/2/4 shards" `Slow
            test_sharded_fault_equivalence;
        ] );
    ]

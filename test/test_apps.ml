(* Tests for the in-network application suite (lib/apps, DESIGN.md §15):
   the NetChain replica chain end to end on audited cuts, PRECISION
   heavy hitters, the count-min sketch fallback, the resource-model
   footprints, and the typed trial-batch errors the experiment harness
   reports. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_topology
open Speedlight_net
module SApps = Speedlight_apps.Apps
module Netchain = Speedlight_apps.Netchain
module Precision = Speedlight_apps.Precision
module Verify = Speedlight_verify.Verify
module Query = Speedlight_query.Query
module Resource_model = Speedlight_resources.Resource_model
module Common = Speedlight_experiments.Common

let keys = 2

(* Three leaves run the chain; both apps are on so the HH cells and the
   chain registers ride the same cuts. [notify_proc_time] models the
   batched register reads an app deployment needs — app cells multiply
   the per-round notification volume (see Experiments.Apps). *)
let make_net ~seed ~shards =
  let ls = Topology.leaf_spine ~leaves:3 ~spines:2 ~hosts_per_leaf:2 () in
  let cfg =
    Config.default
    |> Config.with_seed seed
    |> Config.with_apps
         {
           SApps.hh = Some { Precision.entries = 2; recirc_passes = 1 };
           chain = Some { Netchain.replicas = ls.Topology.leaf_switches; keys };
         }
  in
  let cfg = { cfg with Config.notify_proc_time = Time.us 25 } in
  (ls, Net.create ~cfg ~shards ls.Topology.topo)

(* Cross-leaf fixed-count flows; returns the exact per-flow ground truth
   for the heavy-hitter score. *)
let install_traffic ls net =
  let topo = Net.topology net in
  let hosts_of_leaf leaf =
    List.filter
      (fun h -> fst (Topology.host_attachment topo ~host:h) = leaf)
      (List.init (Topology.n_hosts topo) Fun.id)
  in
  let groups = List.map hosts_of_leaf ls.Topology.leaf_switches in
  let engine = Net.engine net in
  (* Each flow's packets span the whole run (gap = window / count): a
     channel that carries traffic before the idle-exclusion point but
     dies afterwards would leave its units unable to complete any later
     round. *)
  let start = Time.ms 1 and window = Time.ms 39 in
  List.mapi
    (fun f count ->
      let src = List.hd (List.nth groups (f mod 3)) in
      let dst = List.hd (List.nth groups ((f + 1) mod 3)) in
      let gap = Stdlib.max (Time.us 5) (window / count) in
      let rec go at left =
        if left > 0 then
          ignore
            (Engine.schedule engine ~at (fun () ->
                 Net.send net ~flow_id:f ~src ~dst ~size:200 ();
                 go (Time.add at gap) (left - 1)))
      in
      go (Time.add start (Time.us (3 * f))) count;
      (f, count))
    [ 600; 220; 80; 40; 20; 10 ]

let chain_of net sw =
  match Net.app_stage net ~switch:sw with
  | Some st -> SApps.Stage.chain st
  | None -> None

(* One full scenario: traffic + chain writes + snapshot rounds, audited.
   Returns the per-cut chain checks, the certified count, the HH scores
   and the net (for register-level assertions). *)
let run_scenario ?(seed = 91) ?(shards = 1) ?(fault = false) () =
  let ls, net = make_net ~seed ~shards in
  let replicas = ls.Topology.leaf_switches in
  let truth = install_traffic ls net in
  for i = 0 to 3 do
    Net.chain_write net
      ~at:(Time.ms (18 + (4 * i)))
      ~key:(i mod keys) ~value:(100 + i)
  done;
  (if fault then
     let mid = List.nth replicas 1 in
     Net.schedule_on_switch net ~switch:mid ~at:(Time.ms 28) (fun () ->
         match chain_of net mid with
         | Some ch -> Netchain.skip_next_apply ch
         | None -> ()));
  Net.schedule_global net ~at:(Time.ms 12) (fun () -> Net.auto_exclude_idle net);
  let auditor = Verify.attach net in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 16) ~interval:(Time.ms 3) ~count:8
      ~run_until:(Time.ms 42)
  in
  let audit = Verify.audit auditor ~sids in
  let q =
    Query.of_net net ~sids |> Query.apply_audit audit |> Query.certified_only
  in
  let checks = Query.Canned.chain_consistency ~replicas ~keys q in
  let hh = Query.Canned.heavy_hitters ~truth ~k:2 q in
  (net, ls, sids, audit, checks, hh)

(* ------------------------------------------------------------------ *)
(* NetChain *)

let test_chain_end_to_end () =
  let net, ls, sids, audit, checks, _ = run_scenario () in
  let replicas = ls.Topology.leaf_switches in
  Alcotest.(check int) "all rounds taken" 8 (List.length sids);
  Alcotest.(check bool) "some rounds certified" true
    (List.length audit.Verify.certified > 0);
  Alcotest.(check int) "no false-consistent rounds" 0
    (List.length audit.Verify.false_consistent);
  (* After the run settles, every replica holds the last write per key. *)
  List.iter
    (fun sw ->
      match chain_of net sw with
      | None -> Alcotest.fail "replica has no chain stage"
      | Some ch ->
          for k = 0 to keys - 1 do
            let version, value = Netchain.read ch ~key:k in
            Alcotest.(check int)
              (Printf.sprintf "sw %d key %d version" sw k)
              2 version;
            Alcotest.(check int)
              (Printf.sprintf "sw %d key %d value" sw k)
              (100 + k + 2) value
          done)
    replicas;
  (* Every certified cut satisfies the replication invariant. *)
  Alcotest.(check bool) "checks cover certified rounds" true (checks <> []);
  List.iter
    (fun (c : Query.Canned.chain_check) ->
      Alcotest.(check int)
        (Printf.sprintf "round %d violated cells" c.Query.Canned.k_sid)
        0 c.Query.Canned.k_violated)
    checks

let test_chain_fault_flagged_on_cuts () =
  let net, ls, _, _, checks, _ = run_scenario ~fault:true () in
  let mid = List.nth ls.Topology.leaf_switches 1 in
  (match chain_of net mid with
  | Some ch ->
      Alcotest.(check int) "the skip fault fired" 1 (Netchain.skipped_applies ch)
  | None -> Alcotest.fail "no chain at mid");
  let violated_rounds =
    List.filter (fun c -> c.Query.Canned.k_violated > 0) checks
  in
  Alcotest.(check bool) "certified cuts flag the skipped apply" true
    (violated_rounds <> []);
  (* The off-by-one is permanent: once flagged, every later cut stays
     flagged. *)
  let rec suffix_flagged = function
    | [] -> true
    | (c : Query.Canned.chain_check) :: rest ->
        if c.Query.Canned.k_violated > 0 then
          List.for_all (fun c' -> c'.Query.Canned.k_violated > 0) rest
        else suffix_flagged rest
  in
  Alcotest.(check bool) "violation is permanent" true (suffix_flagged checks)

let test_chain_determinism_across_shards () =
  let digest shards =
    let net, _, sids, _, _, _ = run_scenario ~shards () in
    Common.run_digest net ~sids
  in
  Alcotest.(check string) "1 vs 2 shards" (digest 1) (digest 2)

let test_chain_write_requires_head () =
  let _, net = make_net ~seed:5 ~shards:1 in
  match Net.chain_head net with
  | None -> Alcotest.fail "chain configured but no head"
  | Some head -> (
      match chain_of net head with
      | None -> Alcotest.fail "no stage at head"
      | Some ch -> Alcotest.(check bool) "head is head" true (Netchain.is_head ch))

(* ------------------------------------------------------------------ *)
(* PRECISION heavy hitters *)

let test_hh_finds_top_flows () =
  let _, _, _, _, _, hh = run_scenario () in
  Alcotest.(check bool) "scored some certified rounds" true (hh <> []);
  let last = List.nth hh (List.length hh - 1) in
  Alcotest.(check bool) "top flow reported on the last cut" true
    (List.mem 0 last.Query.Canned.h_reported);
  Alcotest.(check bool) "recall above 0.5 on the last cut" true
    (last.Query.Canned.h_recall >= 0.5)

(* ------------------------------------------------------------------ *)
(* Count-min sketch *)

let pkt ~flow_id =
  Packet.create ~uid:0 ~flow_id ~src_host:0 ~dst_host:1 ~size:100 ~created:0 ()

let apply_updates sk l = List.iter (fun (f, w) -> Sketch.update sk ~flow_id:f w) l

let true_counts l =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f, w) ->
      Hashtbl.replace tbl f (w + Option.value ~default:0 (Hashtbl.find_opt tbl f)))
    l;
  tbl

let updates_gen =
  QCheck.(
    small_list (pair (int_range 0 50) (int_range 1 100)))

let qcheck_never_underestimates =
  QCheck.Test.make ~name:"sketch query never underestimates" ~count:200
    updates_gen (fun l ->
      (* A deliberately tiny sketch so collisions actually happen. *)
      let sk = Sketch.create ~depth:2 ~width:8 () in
      apply_updates sk l;
      let tbl = true_counts l in
      Hashtbl.fold
        (fun f c acc -> acc && Sketch.query sk ~flow_id:f >= c)
        tbl true)

let qcheck_total_exact =
  QCheck.Test.make ~name:"sketch total is exact; reset clears" ~count:200
    updates_gen (fun l ->
      let sk = Sketch.create ~depth:3 ~width:16 () in
      apply_updates sk l;
      let sum = List.fold_left (fun a (_, w) -> a + w) 0 l in
      let ok_total = Sketch.total sk = sum in
      Sketch.reset sk;
      ok_total && Sketch.total sk = 0
      && List.for_all (fun (f, _) -> Sketch.query sk ~flow_id:f = 0) l)

let qcheck_arena_matches_heap =
  QCheck.Test.make ~name:"arena-backed sketch = heap-backed sketch" ~count:100
    updates_gen (fun l ->
      let arena = Arena.create ~int_capacity:(4 * 64) () in
      let a = Sketch.create ~arena ~depth:4 ~width:64 () in
      let h = Sketch.create ~depth:4 ~width:64 () in
      apply_updates a l;
      apply_updates h l;
      List.for_all
        (fun (f, _) -> Sketch.query a ~flow_id:f = Sketch.query h ~flow_id:f)
        l
      && Sketch.total a = Sketch.total h)

let test_sketch_counter_integration () =
  let sk = Sketch.create ~depth:2 ~width:32 () in
  let c = Counter.sketch_flow ~sketch:sk ~tracked_flow:7 () in
  for _ = 1 to 5 do
    Counter.update c ~now:0 (pkt ~flow_id:7)
  done;
  Counter.update c ~now:0 (pkt ~flow_id:9);
  Alcotest.(check bool) "tracked flow >= 5" true (Counter.read c ~now:0 >= 5.)

(* ------------------------------------------------------------------ *)
(* Resource model *)

let test_apps_fit_tofino () =
  let total =
    Resource_model.add
      (Resource_model.usage Resource_model.Channel_state ~ports:64)
      (Resource_model.add
         (Resource_model.precision ~entries:4 ~ports:64)
         (Resource_model.netchain ~keys))
  in
  Alcotest.(check bool) "channel state + both apps fit at 64 ports" true
    (Resource_model.fits total Resource_model.tofino_capacity)

let test_add_is_componentwise () =
  let p = Resource_model.precision ~entries:4 ~ports:64 in
  let n = Resource_model.netchain ~keys:8 in
  let s = Resource_model.add p n in
  Alcotest.(check int) "stateful ALUs add" s.Resource_model.stateful_alus
    (p.Resource_model.stateful_alus + n.Resource_model.stateful_alus);
  Alcotest.(check (float 1e-6)) "SRAM adds" s.Resource_model.sram_kb
    (p.Resource_model.sram_kb +. n.Resource_model.sram_kb)

let test_fits_rejects_oversize () =
  (* Blow past the chip's SRAM with an absurd table and the fit must
     fail — [fits] is a real bound, not a constant. *)
  let huge = Resource_model.precision ~entries:1_000_000 ~ports:64 in
  Alcotest.(check bool) "oversize PRECISION rejected" false
    (Resource_model.fits huge Resource_model.tofino_capacity);
  Alcotest.(check bool) "apps footprints monotone in size" true
    ((Resource_model.netchain ~keys:64).Resource_model.sram_kb
    > (Resource_model.netchain ~keys:2).Resource_model.sram_kb)

(* ------------------------------------------------------------------ *)
(* Typed trial-batch errors (the former [assert false] dispatches) *)

let test_expect2_expect3 () =
  Alcotest.(check (pair int int)) "expect2" (1, 2) (Common.expect2 [| 1; 2 |]);
  let a, b, c = Common.expect3 [| 4; 5; 6 |] in
  Alcotest.(check (triple int int int)) "expect3" (4, 5, 6) (a, b, c)

let test_trial_arity_raised_and_printable () =
  (match Common.expect2 [| 1; 2; 3 |] with
  | _ -> Alcotest.fail "expect2 accepted a 3-element batch"
  | exception Common.Trial_arity { expected; got } ->
      Alcotest.(check (pair int int)) "payload" (2, 3) (expected, got));
  (* The registered printer renders the payload, not <abstr>. *)
  let rendered =
    Printexc.to_string (Common.Trial_arity { expected = 3; got = 1 })
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "printer names the exception" true
    (contains rendered "Trial_arity");
  Alcotest.(check bool) "printer shows arities" true
    (contains rendered "3" && contains rendered "1")

(* Counter regression for the rewritten dispatch: the forwarding-version
   setter and its register stay paired — a stamped packet publishes the
   latest set version. *)
let test_forwarding_version_pairing () =
  let c, set_version = Counter.forwarding_version () in
  set_version 7;
  Counter.update c ~now:0 (pkt ~flow_id:1);
  Alcotest.(check (float 0.)) "reads the set version" 7. (Counter.read c ~now:0);
  set_version 9;
  Counter.update c ~now:0 (pkt ~flow_id:1);
  Alcotest.(check (float 0.)) "tracks later sets" 9. (Counter.read c ~now:0)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "apps"
    [
      ( "netchain",
        [
          Alcotest.test_case "end to end on audited cuts" `Quick
            test_chain_end_to_end;
          Alcotest.test_case "skip fault flagged on cuts" `Quick
            test_chain_fault_flagged_on_cuts;
          Alcotest.test_case "deterministic across shards" `Quick
            test_chain_determinism_across_shards;
          Alcotest.test_case "head resolution" `Quick test_chain_write_requires_head;
        ] );
      ( "precision",
        [ Alcotest.test_case "finds top flows" `Quick test_hh_finds_top_flows ] );
      ( "sketch",
        [
          q qcheck_never_underestimates;
          q qcheck_total_exact;
          q qcheck_arena_matches_heap;
          Alcotest.test_case "counter integration" `Quick
            test_sketch_counter_integration;
        ] );
      ( "resources",
        [
          Alcotest.test_case "apps fit tofino" `Quick test_apps_fit_tofino;
          Alcotest.test_case "add componentwise" `Quick test_add_is_componentwise;
          Alcotest.test_case "fits rejects oversize" `Quick
            test_fits_rejects_oversize;
        ] );
      ( "harness",
        [
          Alcotest.test_case "expect2/expect3" `Quick test_expect2_expect3;
          Alcotest.test_case "Trial_arity typed + printable" `Quick
            test_trial_arity_raised_and_printable;
          Alcotest.test_case "forwarding-version pairing" `Quick
            test_forwarding_version_pairing;
        ] );
    ]

(* Command-line runner for the paper-reproduction experiments.

   Each subcommand regenerates one table or figure from the paper (plus
   the ablations and the scale extension), printing the same rows/series
   the paper reports, optionally exporting CSVs for external plotting. *)

open Cmdliner
open Speedlight_experiments

let fmt = Format.std_formatter

let quick_arg =
  let doc = "Run a reduced-size version of the experiment (faster, noisier)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let seed_arg =
  let doc = "Random seed for the simulation." in
  Arg.(value & opt (some int) None & info [ "seed"; "s" ] ~doc)

let csv_arg =
  let doc = "Also write the results as CSV files into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~doc ~docv:"DIR")

let ensure_dir = function
  | None -> None
  | Some d ->
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      Some d

let timed name f =
  let t0 = Sys.time () in
  f ();
  Format.fprintf fmt "@.[%s done in %.1fs cpu]@." name (Sys.time () -. t0)

let run_fig9 quick seed csv =
  timed "fig9" (fun () ->
      let r = Fig9.run ~quick ?seed () in
      Fig9.print fmt r;
      Option.iter (fun dir -> Export.fig9 ~dir r) (ensure_dir csv))

let run_fig10 quick seed csv =
  timed "fig10" (fun () ->
      let r = Fig10.run ~quick ?seed () in
      Fig10.print fmt r;
      Option.iter (fun dir -> Export.fig10 ~dir r) (ensure_dir csv))

let run_fig11 quick seed csv =
  timed "fig11" (fun () ->
      let r = Fig11.run ~quick ?seed () in
      Fig11.print fmt r;
      Option.iter (fun dir -> Export.fig11 ~dir r) (ensure_dir csv))

let run_fig12 quick seed csv app =
  timed "fig12" (fun () ->
      let r =
        match app with
        | Some a -> [ Fig12.run_app ~quick ?seed a ]
        | None -> Fig12.run ~quick ?seed ()
      in
      Fig12.print fmt r;
      Option.iter (fun dir -> Export.fig12 ~dir r) (ensure_dir csv))

let run_fig13 quick seed csv =
  timed "fig13" (fun () ->
      let r = Fig13.run ~quick ?seed () in
      Fig13.print fmt r;
      Option.iter (fun dir -> Export.fig13 ~dir r) (ensure_dir csv))

let run_table1 csv =
  let r = Table1.run () in
  Table1.print fmt r;
  Option.iter (fun dir -> Export.table1 ~dir r) (ensure_dir csv)

let run_ablations quick seed =
  timed "ablations" (fun () ->
      Ablations.print_initiator fmt (Ablations.run_initiator ~quick ?seed ());
      Ablations.print_notifications fmt (Ablations.run_notifications ~quick ?seed ());
      Ablations.print_marker_overhead fmt (Ablations.run_marker_overhead ()))

let run_chaos quick seed csv =
  let failed = ref false in
  timed "chaos" (fun () ->
      let r = Chaos.run ~quick ?seed () in
      Chaos.print fmt r;
      Option.iter (fun dir -> Export.chaos ~dir r) (ensure_dir csv);
      failed := Chaos.has_false_consistent r);
  if !failed then exit 3

let run_update quick seed shards csv =
  let failed = ref false in
  timed "update" (fun () ->
      let r = Update.run ~quick ~shards ?seed () in
      Update.print fmt r;
      Option.iter (fun dir -> Export.update ~dir r) (ensure_dir csv);
      failed := Update.has_timed_anomaly r);
  if !failed then exit 3

let run_apps quick seed =
  let failed = ref false in
  timed "apps" (fun () ->
      let r = Apps.run ~quick ?seed () in
      Apps.print fmt r;
      failed := not r.Apps.ok);
  if !failed then exit 3

let run_scale quick seed csv =
  timed "scale" (fun () ->
      let r = Scale.run ~quick ?seed () in
      Scale.print fmt r;
      Option.iter (fun dir -> Export.scale ~dir r) (ensure_dir csv))

let fig9_cmd =
  Cmd.v
    (Cmd.info "fig9" ~doc:"Synchronization CDFs: snapshots vs polling (Figure 9)")
    Term.(const run_fig9 $ quick_arg $ seed_arg $ csv_arg)

let fig10_cmd =
  Cmd.v
    (Cmd.info "fig10" ~doc:"Max sustained snapshot rate vs ports (Figure 10)")
    Term.(const run_fig10 $ quick_arg $ seed_arg $ csv_arg)

let fig11_cmd =
  Cmd.v
    (Cmd.info "fig11" ~doc:"Synchronization at scale, Monte-Carlo (Figure 11)")
    Term.(const run_fig11 $ quick_arg $ seed_arg $ csv_arg)

let fig12_cmd =
  let app_arg =
    let doc = "Only run one workload: hadoop, graphx or memcache." in
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("hadoop", Fig12.Hadoop); ("graphx", Fig12.Graphx);
                  ("memcache", Fig12.Memcache) ]))
          None
      & info [ "app" ] ~doc)
  in
  Cmd.v
    (Cmd.info "fig12" ~doc:"Load-balance evaluation: ECMP vs flowlet (Figure 12)")
    Term.(const run_fig12 $ quick_arg $ seed_arg $ csv_arg $ app_arg)

let fig13_cmd =
  Cmd.v
    (Cmd.info "fig13" ~doc:"Synchronized-traffic correlation matrices (Figure 13)")
    Term.(const run_fig13 $ quick_arg $ seed_arg $ csv_arg)

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Tofino resource-usage model (Table 1)")
    Term.(const run_table1 $ csv_arg)

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"Design ablations: initiators, notification volume")
    Term.(const run_ablations $ quick_arg $ seed_arg)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
        "Fault-injection sweep with an independent cut auditor; exits 3 if \
         any snapshot labeled consistent fails the audit")
    Term.(const run_chaos $ quick_arg $ seed_arg $ csv_arg)

let update_cmd =
  let shards_arg =
    let doc = "Number of simulation shards (domains)." in
    Arg.(value & opt int 1 & info [ "shards" ] ~doc ~docv:"N")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Timed vs untimed forwarding updates, closed-loop on snapshots; \
          exits 3 if any timed update is not snapshot-certified atomic")
    Term.(const run_update $ quick_arg $ seed_arg $ shards_arg $ csv_arg)

let apps_cmd =
  Cmd.v
    (Cmd.info "apps"
       ~doc:
         "In-network apps (PRECISION heavy hitters + NetChain KV chain) \
          audited on consistent cuts vs a polling baseline; exits 3 if any \
          audit gate fails (including a chain violation on a certified cut)")
    Term.(const run_apps $ quick_arg $ seed_arg)

let scale_cmd =
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Extension: real-protocol sync on fat trees vs Fig.11 prediction")
    Term.(const run_scale $ quick_arg $ seed_arg $ csv_arg)

let run_trace quick seed shards faults out =
  timed "trace" (fun () ->
      let r = Tracing.run ~quick ?seed ~shards ~fault_intensity:faults () in
      Tracing.print fmt r;
      match ensure_dir out with
      | None -> ()
      | Some dir ->
          let json = Filename.concat dir "trace.json" in
          Export.chrome_trace ~path:json r.Tracing.trace;
          Export.timeline ~dir r.Tracing.timeline;
          let mjson = Filename.concat dir "metrics.json" in
          let buf = Buffer.create 1024 in
          Speedlight_trace.Metrics.add_json buf r.Tracing.metrics;
          let oc = open_out mjson in
          Buffer.output_buffer oc buf;
          output_char oc '\n';
          close_out oc;
          Format.fprintf fmt
            "@.Wrote %s (Chrome trace), trace_timeline.csv, trace_cdfs.csv, \
             metrics.json in %s@."
            json dir)

let trace_cmd =
  let shards_arg =
    let doc = "Number of simulation shards (domains)." in
    Arg.(value & opt int 1 & info [ "shards" ] ~doc ~docv:"N")
  in
  let faults_arg =
    let doc =
      "Chaos fault-plan intensity in [0,1] (0 disables fault injection)."
    in
    Arg.(value & opt float 0. & info [ "faults" ] ~doc ~docv:"X")
  in
  let out_arg =
    let doc =
      "Write trace.json (Chrome trace_event format), timeline/CDF CSVs and \
       metrics.json into $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc ~docv:"DIR")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Traced testbed run: deterministic event trace, per-snapshot \
          timelines, metrics")
    Term.(
      const run_trace $ quick_arg $ seed_arg $ shards_arg $ faults_arg $ out_arg)

let all_cmd =
  let run quick seed csv =
    run_table1 csv;
    run_fig9 quick seed csv;
    run_fig10 quick seed csv;
    run_fig11 quick seed csv;
    run_fig12 quick seed csv None;
    run_fig13 quick seed csv;
    run_ablations quick seed;
    run_scale quick seed csv;
    run_chaos quick seed csv;
    run_update quick seed 1 csv;
    run_apps quick seed
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every table/figure reproduction in sequence")
    Term.(const run $ quick_arg $ seed_arg $ csv_arg)

let run_archive quick seed shards policy counter no_audit segment_rounds out =
  timed "archive" (fun () ->
      let r =
        Archive.capture ~quick ?seed ~shards ~policy ~counter
          ~audit:(not no_audit) ~segment_rounds ~dir:out ()
      in
      Archive.print fmt r)

let archive_cmd =
  let out_arg =
    let doc = "Directory to write the snapshot archive into (replaced)." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc ~docv:"DIR")
  in
  let shards_arg =
    let doc = "Number of simulation shards (domains)." in
    Arg.(value & opt int 1 & info [ "shards" ] ~doc ~docv:"N")
  in
  let policy_arg =
    let doc = "Load-balancing policy: ecmp or flowlet." in
    Arg.(
      value
      & opt
          (enum
             [
               ("ecmp", Speedlight_topology.Routing.Ecmp);
               ( "flowlet",
                 Speedlight_topology.Routing.Flowlet
                   { gap = Speedlight_sim.Time.us 500 } );
             ])
          Speedlight_topology.Routing.Ecmp
      & info [ "policy" ] ~doc)
  in
  let counter_arg =
    let doc = "Per-unit state to snapshot: ewma, queue or fib." in
    Arg.(
      value
      & opt
          (enum
             [
               ("ewma", Speedlight_net.Config.Ewma_interarrival);
               ("queue", Speedlight_net.Config.Queue_depth);
               ("fib", Speedlight_net.Config.Fib_version);
             ])
          Speedlight_net.Config.Ewma_interarrival
      & info [ "counter" ] ~doc)
  in
  let no_audit_arg =
    let doc = "Skip the independent cut audit (archive stays unlabeled)." in
    Arg.(value & flag & info [ "no-audit" ] ~doc)
  in
  let segment_arg =
    let doc = "Rounds per segment file (delta chains restart per segment)." in
    Arg.(value & opt int 32 & info [ "segment-rounds" ] ~doc ~docv:"N")
  in
  Cmd.v
    (Cmd.info "archive"
       ~doc:
         "Run the testbed workload and persist every completed snapshot \
          into an on-disk archive (with audit labels)")
    Term.(
      const run_archive $ quick_arg $ seed_arg $ shards_arg $ policy_arg
      $ counter_arg $ no_audit_arg $ segment_arg $ out_arg)

let run_query which archive certified csv =
  match Speedlight_store.Store.Reader.open_archive archive with
  | Error e ->
      Format.fprintf fmt "error: %s@."
        (Speedlight_store.Store.error_to_string e);
      exit 2
  | Ok r ->
      Speedlight_store.Store.Reader.close r;
      Archive.run_query ?csv:(ensure_dir csv) ~certified_only:certified fmt
        which ~dir:archive ()

let query_cmd =
  let which_arg =
    let doc =
      "The canned query to run: summary, imbalance, spearman, queues, \
       incast or dump."
    in
    Arg.(
      required
      & pos 0 (some (enum Archive.query_names)) None
      & info [] ~doc ~docv:"QUERY")
  in
  let archive_arg =
    let doc = "The archive directory to query." in
    Arg.(
      required & opt (some string) None & info [ "archive"; "a" ] ~doc ~docv:"DIR")
  in
  let certified_arg =
    let doc = "Only include snapshots the cut auditor certified." in
    Arg.(value & flag & info [ "certified" ] ~doc)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run a canned analysis over a snapshot archive written by \
          $(b,speedlight archive)")
    Term.(const run_query $ which_arg $ archive_arg $ certified_arg $ csv_arg)

(* Randomized scenario fuzzing (DESIGN.md §14). [SPEEDLIGHT_FUZZ_BREAK=1]
   deliberately breaks marker handling in every snapshot unit so the
   oracle battery and the shrinker can be demonstrated end to end. *)

let run_fuzz quick seed campaigns long out repro =
  let module F = Speedlight_fuzz.Fuzz in
  let break_marker =
    match Sys.getenv_opt "SPEEDLIGHT_FUZZ_BREAK" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  match repro with
  | Some file -> (
      let text =
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match F.of_string text with
      | Error e ->
          Format.fprintf fmt "error: %s: %s@." file e;
          exit 2
      | Ok sc -> (
          Format.fprintf fmt "replaying %a@." F.pp_scenario sc;
          match F.run_scenario ~break_marker sc with
          | Ok stats ->
              Format.fprintf fmt
                "PASS: %d/%d snapshots taken, %d complete, %d certified, \
                 digest %s@."
                stats.F.rs_taken stats.F.rs_requested stats.F.rs_complete
                stats.F.rs_certified stats.F.rs_digest
          | Error f ->
              Format.fprintf fmt "FAIL [%s]: %s@." (F.oracle_name f.F.f_oracle)
                f.F.f_detail;
              exit 3))
  | None ->
      let budget = if long then F.Long else F.Quick in
      let count =
        match campaigns with Some n -> n | None -> if long then 600 else 200
      in
      ignore quick;
      let progress =
        if Unix.isatty Unix.stderr then (fun i ->
          if (i + 1) mod 50 = 0 then Printf.eprintf "  %d/%d campaigns\n%!" (i + 1) count)
        else ignore
      in
      let s =
        F.run_campaigns ~budget ~break_marker ~progress ~seed:(Option.value seed ~default:42)
          ~count ()
      in
      Format.fprintf fmt
        "fuzz: %d campaigns, %d failure(s), verdict digest %s, %.1fs wall \
         (%.0f campaigns/min)@."
        s.F.su_campaigns
        (List.length s.F.su_failures)
        s.F.su_digest s.F.su_wall_s s.F.su_campaigns_per_min;
      List.iter
        (fun cf ->
          let sh = cf.F.cf_shrunk in
          Format.fprintf fmt
            "@.campaign %d FAILED [%s]: %s@.  original: %a@.  shrunk (%d \
             step(s), %d attempt(s)): %a@.  shrunk failure: %s@."
            cf.F.cf_index
            (F.oracle_name cf.F.cf_failure.F.f_oracle)
            cf.F.cf_failure.F.f_detail F.pp_scenario cf.F.cf_scenario
            sh.F.sh_steps sh.F.sh_attempts F.pp_scenario sh.F.sh_scenario
            sh.F.sh_failure.F.f_detail;
          match ensure_dir (Some out) with
          | None -> ()
          | Some dir ->
              let path =
                Filename.concat dir (Printf.sprintf "repro-%d.txt" cf.F.cf_index)
              in
              let oc = open_out path in
              output_string oc (F.to_string sh.F.sh_scenario);
              close_out oc;
              Format.fprintf fmt
                "  reproducer: %s (replay with: speedlight fuzz --repro %s)@."
                path path)
        s.F.su_failures;
      if s.F.su_failures <> [] then exit 3

let fuzz_cmd =
  let campaigns_arg =
    let doc = "Number of seed-derived campaigns (default 200, 600 with --long)." in
    Arg.(value & opt (some int) None & info [ "campaigns"; "n" ] ~doc ~docv:"N")
  in
  let long_arg =
    let doc = "Larger scenario budget: bigger topologies, more rounds and chaos." in
    Arg.(value & flag & info [ "long" ] ~doc)
  in
  let out_arg =
    let doc = "Directory for minimal-reproducer seed files (written on failure)." in
    Arg.(value & opt string "fuzz-failures" & info [ "out"; "o" ] ~doc ~docv:"DIR")
  in
  let repro_arg =
    let doc = "Replay a single reproducer seed file instead of running campaigns." in
    Arg.(value & opt (some string) None & info [ "repro" ] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Randomized scenario fuzzing: seed-derived topology/workload/chaos \
          scenarios checked against a fixed oracle battery, with automatic \
          shrinking of failures to minimal reproducers")
    Term.(
      const run_fuzz $ quick_arg $ seed_arg $ campaigns_arg $ long_arg $ out_arg
      $ repro_arg)

let () =
  let doc = "Speedlight (Synchronized Network Snapshots, SIGCOMM'18) reproduction" in
  let info = Cmd.info "speedlight" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig9_cmd; fig10_cmd; fig11_cmd; fig12_cmd; fig13_cmd; table1_cmd;
            ablations_cmd; scale_cmd; chaos_cmd; update_cmd; apps_cmd;
            trace_cmd; archive_cmd; query_cmd; fuzz_cmd; all_cmd;
          ]))

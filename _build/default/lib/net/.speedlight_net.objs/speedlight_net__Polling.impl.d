lib/net/polling.ml: Array Dist Engine Float List Net Rng Speedlight_dataplane Speedlight_sim Time Unit_id

lib/net/switch.mli: Config Engine Notification Packet Rng Routing Snapshot_unit Speedlight_core Speedlight_dataplane Speedlight_sim Speedlight_topology Topology Unit_id

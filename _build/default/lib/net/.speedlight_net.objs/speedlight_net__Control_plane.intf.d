lib/net/control_plane.mli: Clock Config Cp_tracker Engine Notification Report Rng Speedlight_clock Speedlight_core Speedlight_dataplane Speedlight_sim Time

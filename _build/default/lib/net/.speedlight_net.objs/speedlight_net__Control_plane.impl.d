lib/net/control_plane.ml: Clock Config Cp_tracker Dist Engine Float List Notification Ptp Queue Rng Snapshot_unit Speedlight_clock Speedlight_core Speedlight_dataplane Speedlight_sim Stdlib Time Wrap

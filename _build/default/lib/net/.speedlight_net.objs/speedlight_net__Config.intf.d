lib/net/config.mli: Ptp Routing Snapshot_unit Speedlight_clock Speedlight_core Speedlight_sim Speedlight_topology Time

lib/net/net.mli: Config Control_plane Engine Observer Packet Rng Routing Snapshot_unit Speedlight_core Speedlight_dataplane Speedlight_sim Speedlight_topology Switch Time Topology Unit_id

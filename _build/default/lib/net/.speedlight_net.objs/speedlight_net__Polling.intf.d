lib/net/polling.mli: Dist Net Rng Speedlight_dataplane Speedlight_sim Time Unit_id

lib/net/monitor.mli: Net Observer Speedlight_core Speedlight_dataplane Speedlight_sim

lib/net/monitor.ml: Array Engine Hashtbl List Net Observer Report Speedlight_core Speedlight_dataplane Speedlight_sim Time

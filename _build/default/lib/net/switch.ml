open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology

type port_state = {
  port : int;
  ingress : Snapshot_unit.t;
  egress : Snapshot_unit.t;
  queue : Packet.t Fifo_queue.t;
  mutable busy : bool;
  link : Topology.link_spec;
  peer : Topology.peer;
}

type t = {
  sw_id : int;
  engine : Engine.t;
  cfg : Config.t;
  topo : Topology.t;
  routing : Routing.t;
  selector : Routing.Selector.s;
  ports : port_state option array;
  enabled : bool;
  pktgen : Packet.Gen.t;
  to_wire : peer:Topology.peer -> Packet.t -> unit;
  mutable fib_setters : (int -> unit) list;
  mutable route_override : (dst_host:int -> int option) option;
  mutable forwarded : int;
}

let egress_neighbor_index_ ~cos_levels ~in_port ~cos = 1 + (in_port * cos_levels) + cos

let make_counter (cfg : Config.t) ~read_depth ~register_fib =
  match cfg.counter with
  | Config.Packet_count -> Counter.packet_count ()
  | Config.Byte_count -> Counter.byte_count ()
  | Config.Queue_depth -> Counter.queue_depth ~read_depth
  | Config.Ewma_interarrival -> Counter.ewma_interarrival ()
  | Config.Ewma_rate bin_us -> Counter.ewma_rate ~bin:(Time.us bin_us) ()
  | Config.Fib_version ->
      let c, set = Counter.forwarding_version () in
      register_fib set;
      c
  | Config.Sketch_flow tracked_flow -> Counter.sketch_flow ~tracked_flow ()

let create ~id ~engine ~rng ~cfg ~topo ~routing ~pktgen ~notify ~to_wire ~enabled =
  let n_ports = Topology.ports topo id in
  let t =
    {
      sw_id = id;
      engine;
      cfg;
      topo;
      routing;
      selector = Routing.Selector.create cfg.Config.lb_policy ~rng ~switch:id;
      ports = Array.make n_ports None;
      enabled;
      pktgen;
      to_wire;
      fib_setters = [];
      route_override = None;
      forwarded = 0;
    }
  in
  let register_fib set = t.fib_setters <- set :: t.fib_setters in
  for p = 0 to n_ports - 1 do
    match (Topology.peer_of topo ~switch:id ~port:p, Topology.link_of topo ~switch:id ~port:p) with
    | Some peer, Some link ->
        let queue = Fifo_queue.create ~cos_levels:cfg.Config.cos_levels
            ~capacity:cfg.Config.queue_capacity () in
        let read_depth () = Fifo_queue.depth queue in
        let ingress =
          Snapshot_unit.create
            ~id:(Unit_id.ingress ~switch:id ~port:p)
            ~cfg:cfg.Config.unit_cfg ~n_neighbors:2
            ~counter:(make_counter cfg ~read_depth:(fun () -> 0) ~register_fib)
            ~notify
        in
        let egress =
          Snapshot_unit.create
            ~id:(Unit_id.egress ~switch:id ~port:p)
            ~cfg:cfg.Config.unit_cfg
            ~n_neighbors:(1 + (n_ports * cfg.Config.cos_levels))
            ~counter:(make_counter cfg ~read_depth ~register_fib)
            ~notify
        in
        t.ports.(p) <- Some { port = p; ingress; egress; queue; busy = false; link; peer }
    | _, _ -> ()
  done;
  t

let id t = t.sw_id
let enabled t = t.enabled

let port_state t p =
  match t.ports.(p) with
  | Some ps -> ps
  | None -> invalid_arg (Printf.sprintf "Switch %d: port %d not connected" t.sw_id p)

let connected_ports t =
  let acc = ref [] in
  for p = Array.length t.ports - 1 downto 0 do
    if t.ports.(p) <> None then acc := p :: !acc
  done;
  !acc

let ingress_unit t ~port = (port_state t port).ingress
let egress_unit t ~port = (port_state t port).egress

let unit_of t (uid : Unit_id.t) =
  if uid.Unit_id.switch <> t.sw_id then
    invalid_arg "Switch.unit_of: unit belongs to another switch";
  match uid.Unit_id.dir with
  | Unit_id.Ingress -> ingress_unit t ~port:uid.Unit_id.port
  | Unit_id.Egress -> egress_unit t ~port:uid.Unit_id.port

let units t =
  List.concat_map
    (fun p ->
      let ps = port_state t p in
      [ ps.ingress; ps.egress ])
    (connected_ports t)

let egress_neighbor_index t ~in_port ~cos =
  egress_neighbor_index_ ~cos_levels:t.cfg.Config.cos_levels ~in_port ~cos

let queue_depth t ~port = Fifo_queue.depth (port_state t port).queue
let queue_drops t ~port = Fifo_queue.drops (port_state t port).queue
let total_forwarded t = t.forwarded
let set_fib_version t v = List.iter (fun set -> set v) t.fib_setters
let set_route_override t f = t.route_override <- f

(* Serialization time of a packet on a link, in simulated time. *)
let serialization_time (cfg : Config.t) (link : Topology.link_spec) pkt =
  let with_cs = cfg.unit_cfg.Snapshot_unit.channel_state in
  let bits = 8 * Packet.wire_size ~with_channel_state:with_cs pkt in
  Time.of_ns_float (float_of_int bits /. link.Topology.bandwidth_bps *. 1e9)

(* Transmit loop of one port: pop from the egress queue, run the egress
   processing unit, serialize, propagate, hand to the peer. *)
let rec start_transmit t ps =
  match Fifo_queue.pop ps.queue with
  | None -> ps.busy <- false
  | Some (_cos, pkt) ->
      ps.busy <- true;
      let now = Engine.now t.engine in
      if t.enabled then Snapshot_unit.process_packet ps.egress ~now pkt;
      t.forwarded <- t.forwarded + 1;
      let ser = serialization_time t.cfg ps.link pkt in
      ignore
        (Engine.schedule_after t.engine ~delay:ser (fun () ->
             (* The link is free for the next packet once serialization
                completes; propagation is pipelined. *)
             ignore
               (Engine.schedule_after t.engine ~delay:ps.link.Topology.latency
                  (fun () -> deliver t ps pkt));
             start_transmit t ps))

and deliver t ps pkt =
  (match ps.peer with
  | Topology.Host_port _ ->
      (* Remove the snapshot header before delivery to hosts (§5.1). *)
      pkt.Packet.snap <- None
  | Topology.Switch_port _ -> ());
  t.to_wire ~peer:ps.peer pkt

let enqueue_egress t ~in_port ~out_port pkt =
  let ps = port_state t out_port in
  let cos = Stdlib.min pkt.Packet.cos (t.cfg.Config.cos_levels - 1) in
  (match pkt.Packet.snap with
  | Some h when t.enabled ->
      h.Snapshot_header.channel <- egress_neighbor_index t ~in_port ~cos
  | Some _ | None -> ());
  if Fifo_queue.push ps.queue ~cos pkt then
    if not ps.busy then start_transmit t ps

let route_normal t ~dst_host ~flow_id ~size =
  let attach_sw, attach_port = Topology.host_attachment t.topo ~host:dst_host in
  if attach_sw = t.sw_id then attach_port
  else
    Routing.Selector.select t.selector t.routing ~dst_host ~flow_id ~size
      ~now:(Engine.now t.engine)

let forward_decision t ~dst_host ~flow_id ~size =
  match t.route_override with
  | Some f -> (
      match f ~dst_host with
      | Some p -> p
      | None -> route_normal t ~dst_host ~flow_id ~size)
  | None -> route_normal t ~dst_host ~flow_id ~size

let receive t ~port pkt =
  let ps = port_state t port in
  let now = Engine.now t.engine in
  if t.enabled then begin
    (* Mark which upstream channel the packet arrived on: the single
       external neighbor of this ingress unit. *)
    (match pkt.Packet.snap with
    | Some h -> h.Snapshot_header.channel <- 1
    | None -> ());
    Snapshot_unit.process_packet ps.ingress ~now pkt
  end;
  (* Marker broadcasts (negative destination) are consumed here: they only
     exist to push snapshot IDs across otherwise idle channels (§6). *)
  if pkt.Packet.dst_host >= 0 then begin
    let out_port =
      forward_decision t ~dst_host:pkt.Packet.dst_host ~flow_id:pkt.Packet.flow_id
        ~size:pkt.Packet.size
    in
    ignore
      (Engine.schedule_after t.engine ~delay:t.cfg.Config.switch_latency (fun () ->
           enqueue_egress t ~in_port:port ~out_port pkt))
  end

(* Control-plane broadcast injection (§6 "Ensuring liveness"): a marker
   packet enters each ingress unit and replicates to every other egress
   port, crossing the wire once and dying at the neighbor's ingress. This
   forces snapshot-ID propagation over channels the workload leaves idle. *)
let cp_broadcast t =
  if t.enabled then begin
    let ports = connected_ports t in
    let now = Engine.now t.engine in
    List.iter
      (fun p ->
        let ps = port_state t p in
        let pkt =
          Packet.create ~uid:(Packet.Gen.next_uid t.pktgen) ~flow_id:(-1)
            ~src_host:(-1) ~dst_host:(-1) ~size:64 ~created:now ()
        in
        Snapshot_unit.process_packet ps.ingress ~now pkt;
        let sid, ghost =
          match pkt.Packet.snap with
          | Some h -> (h.Snapshot_header.sid, h.Snapshot_header.ghost_sid)
          | None -> (0, 0)
        in
        List.iter
          (fun q ->
            if q <> p then begin
              let copy =
                Packet.create ~uid:(Packet.Gen.next_uid t.pktgen) ~flow_id:(-1)
                  ~src_host:(-1) ~dst_host:(-1) ~size:64 ~created:now ()
              in
              copy.Packet.snap <-
                Some (Snapshot_header.data ~sid ~channel:0 ~ghost_sid:ghost);
              ignore
                (Engine.schedule_after t.engine ~delay:t.cfg.Config.switch_latency
                   (fun () -> enqueue_egress t ~in_port:p ~out_port:q copy))
            end)
          ports)
      ports
  end

let inject_initiation t ~port ~sid_wrapped ~ghost_sid =
  let ps = port_state t port in
  let now = Engine.now t.engine in
  Snapshot_unit.process_initiation ps.ingress ~now ~sid:sid_wrapped ~ghost_sid;
  ignore
    (Engine.schedule_after t.engine ~delay:t.cfg.Config.switch_latency (fun () ->
         Snapshot_unit.process_initiation ps.egress ~now:(Engine.now t.engine)
           ~sid:sid_wrapped ~ghost_sid))

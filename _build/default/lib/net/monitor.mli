(** Continuous monitoring: a periodic snapshot stream.

    The operator-facing mode of the system: take a synchronized snapshot
    every [period], deliver each completed snapshot to a callback, keep a
    bounded history, and respect wraparound pacing automatically (if the
    observer's outstanding window is full, a tick is skipped rather than
    violating the ID-skew bound — skips are counted). Every experiment in
    the paper's §8 is a loop of this shape. *)

open Speedlight_core

type t

val start :
  Net.t ->
  period:Speedlight_sim.Time.t ->
  ?history:int ->
  ?on_snapshot:(Observer.snapshot -> unit) ->
  unit ->
  t
(** Begin snapshotting every [period] (first snapshot after one period).
    [history] bounds the retained completed snapshots (default 128). *)

val stop : t -> unit
(** Stop scheduling new snapshots (outstanding ones still complete). *)

val history : t -> Observer.snapshot list
(** Completed snapshots, oldest first, up to the history bound. *)

val taken : t -> int
(** Snapshots initiated so far. *)

val skipped : t -> int
(** Ticks skipped because the pacing window was full — if this grows, the
    period is shorter than the network's completion latency. *)

val series : t -> Speedlight_dataplane.Unit_id.t -> float array
(** The time series of one unit's consistent values across the retained
    history (incomplete/inconsistent entries are skipped). This is the
    input shape the Fig. 13 correlation analysis consumes. *)

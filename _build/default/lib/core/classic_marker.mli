(** The original Chandy–Lamport snapshot (1985), with dedicated marker
    messages — implemented as a baseline to contrast with Speedlight's
    piggybacking design.

    One node per processing unit, FIFO channels, a single snapshot at a
    time. On initiation (or on the first marker), a node records its local
    state and emits a marker on {e every} outgoing channel; it records
    in-flight channel state on each incoming channel from its own snapshot
    point until that channel's marker arrives.

    Contrast with Speedlight (§3–4 of the paper): markers cost one extra
    message per directed channel per snapshot and support only one
    outstanding snapshot; piggybacked IDs cost a few header bits on every
    packet, support concurrent initiators and unlimited consecutive
    snapshots, and survive marker (packet) loss because every subsequent
    packet re-carries the ID. The {!Ablations}-style comparison in the
    bench quantifies the message overhead. *)

type t

val create : n_in:int -> n_out:int -> t
(** A node with [n_in] incoming and [n_out] outgoing FIFO channels. *)

val initiate : t -> state:float -> send_marker:(out_channel_:int -> unit) -> unit
(** Locally initiate: record [state] and emit a marker on every outgoing
    channel. No-op if the node already snapshotted. *)

val on_packet : t -> in_channel_:int -> contribution:float -> unit
(** A regular message arrives: accumulated into the channel's recorded
    state iff the node has snapshotted and the channel's marker has not
    yet arrived. *)

val on_marker :
  t -> in_channel_:int -> state:float -> send_marker:(out_channel_:int -> unit) -> unit
(** A marker arrives on an incoming channel: triggers the local snapshot
    (recording [state]) if it hasn't happened, and closes that channel's
    recording. *)

val recorded : t -> bool
(** Has the node recorded its local state? *)

val complete : t -> bool
(** Have all incoming channels' markers arrived? *)

val state : t -> float option
val channel_state : t -> int -> float
(** Recorded in-flight contribution of one incoming channel. *)

val markers_sent : t -> int
val reset : t -> unit

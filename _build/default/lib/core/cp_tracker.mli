(** Control-plane snapshot tracking — Figure 7 of the paper.

    One tracker runs per switch. It consumes data-plane notifications and
    (a) detects when each processing unit has finished each snapshot,
    (b) marks snapshots that the data plane skipped past as inconsistent
    (channel-state mode), or infers their values (no-channel-state mode),
    (c) reads finalized snapshot values out of the data-plane registers and
    emits {!Report.t}s, and (d) records per-snapshot notification
    timestamps (the synchronization metric of §8.1).

    The tracker works in {e unwrapped} ID space internally: wrapped fields
    arriving in notifications are unwrapped against the tracker's own view,
    which is the rollover-aware bookkeeping §5.3 calls for. *)

open Speedlight_sim
open Speedlight_dataplane

type dp_access = {
  read_slot : ghost_sid:int -> Snapshot_unit.slot_read;
  read_sid : unit -> int;  (** wrapped current snapshot ID register *)
  read_last_seen : unit -> int array;  (** wrapped Last Seen registers *)
}
(** Direct register access to one processing unit (the PCIe path used both
    for value collection and for proactive polling). *)

type unit_spec = {
  uid : Unit_id.t;
  access : dp_access;
  n_neighbors : int;  (** including the control plane at index 0 *)
  excluded_neighbors : int list;
      (** Last Seen entries removed from completion consideration (§6
          "Ensuring liveness", e.g. host-facing channels); index 0 (the
          control plane) is always excluded *)
}

type t

val create :
  channel_state:bool ->
  ?max_sid:int ->
  ?wraparound:bool ->
  units:unit_spec list ->
  report:(Report.t -> unit) ->
  unit ->
  t
(** [max_sid]/[wraparound] must match the data-plane configuration
    (defaults: 255, true). *)

val on_notify : t -> now:Time.t -> Notification.t -> unit
(** Main event handler (Fig. 7, [OnNotifyCS] / [OnNotifyNoCS]). Duplicate
    notifications are ignored; [now] is the control plane's receive time
    used to stamp emitted reports. *)

val poll : t -> now:Time.t -> unit
(** Proactively read every unit's snapshot-ID and Last Seen registers and
    process any progress found, recovering from dropped notifications
    (§6). *)

val exclude_neighbor : t -> now:Time.t -> Unit_id.t -> int -> unit
(** Remove a Last Seen entry from completion consideration at runtime (§6:
    "operators can configure the removal of non-utilized upstream
    neighbors from ctrlLastSeen consideration"). Snapshots newly covered by
    the shrunken minimum are finalized immediately. *)

val is_excluded : t -> Unit_id.t -> int -> bool

val ctrl_sid : t -> Unit_id.t -> int
(** Control-plane view of a unit's (unwrapped) current snapshot ID. *)

val finished_through : t -> Unit_id.t -> int
(** Greatest snapshot ID the unit has finalized ([lastRead]). *)

val is_inconsistent : t -> Unit_id.t -> sid:int -> bool

val sync_window : t -> sid:int -> (Time.t * Time.t) option
(** Earliest and latest data-plane notification timestamps seen for the
    given (unwrapped) snapshot ID — the per-switch synchronization window
    of §8.1. *)

val notifications_processed : t -> int
val duplicates_dropped : t -> int

open Speedlight_sim
open Speedlight_dataplane

type t = {
  unit_id : Unit_id.t;
  sid : int;
  value : float option;
  channel : float;
  consistent : bool;
  inferred : bool;
  completed_at : Time.t;
}

let consistent_value t = if t.consistent then t.value else None

let pp fmt t =
  Format.fprintf fmt "report[%a sid=%d value=%s chnl=%g %s%s @%a]" Unit_id.pp
    t.unit_id t.sid
    (match t.value with Some v -> Printf.sprintf "%g" v | None -> "-")
    t.channel
    (if t.consistent then "consistent" else "INCONSISTENT")
    (if t.inferred then " inferred" else "")
    Time.pp t.completed_at

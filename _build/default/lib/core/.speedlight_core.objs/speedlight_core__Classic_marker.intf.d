lib/core/classic_marker.mli:

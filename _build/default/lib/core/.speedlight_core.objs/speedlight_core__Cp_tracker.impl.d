lib/core/cp_tracker.ml: Array Hashtbl List Notification Report Snapshot_unit Speedlight_dataplane Speedlight_sim Stdlib Time Unit_id Wrap

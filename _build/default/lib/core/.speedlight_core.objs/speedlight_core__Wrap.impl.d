lib/core/wrap.ml: Stdlib

lib/core/report.ml: Format Printf Speedlight_dataplane Speedlight_sim Time Unit_id

lib/core/ideal_unit.ml: Array Hashtbl Option Stdlib

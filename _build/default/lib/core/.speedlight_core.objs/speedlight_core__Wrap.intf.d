lib/core/wrap.mli:

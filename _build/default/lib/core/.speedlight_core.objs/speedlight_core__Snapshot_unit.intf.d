lib/core/snapshot_unit.mli: Counter Notification Packet Speedlight_dataplane Speedlight_sim Time Unit_id

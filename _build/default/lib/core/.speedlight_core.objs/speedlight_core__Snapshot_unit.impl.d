lib/core/snapshot_unit.ml: Array Counter Notification Packet Snapshot_header Speedlight_dataplane Stdlib Unit_id Wrap

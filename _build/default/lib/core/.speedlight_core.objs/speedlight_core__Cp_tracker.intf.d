lib/core/cp_tracker.mli: Notification Report Snapshot_unit Speedlight_dataplane Speedlight_sim Time Unit_id

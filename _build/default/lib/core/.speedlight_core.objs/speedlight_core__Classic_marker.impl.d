lib/core/classic_marker.ml: Array Stdlib

lib/core/observer.mli: Engine Report Speedlight_dataplane Speedlight_sim Time Unit_id

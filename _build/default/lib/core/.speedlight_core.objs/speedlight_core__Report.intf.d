lib/core/report.mli: Format Speedlight_dataplane Speedlight_sim Time Unit_id

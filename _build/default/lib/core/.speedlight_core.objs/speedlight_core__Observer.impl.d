lib/core/observer.ml: Engine Hashtbl List Option Report Speedlight_dataplane Speedlight_sim Time Unit_id

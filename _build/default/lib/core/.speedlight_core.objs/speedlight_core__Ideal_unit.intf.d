lib/core/ideal_unit.mli:

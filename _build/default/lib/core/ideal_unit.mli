(** The idealized per-processing-unit snapshot protocol — Figure 3 of the
    paper, verbatim.

    Unbounded snapshot IDs, unbounded snapshot storage, and the ability to
    loop through every intermediate ID — everything real ASICs cannot do.
    This module is the executable specification: property tests run the
    hardware-constrained {!Snapshot_unit} against it and check that
    wherever Speedlight reports a snapshot {e consistent}, its value
    matches this reference. *)

type t

val create : n_neighbors:int -> channel_state:bool -> t
(** [n_neighbors] counts upstream neighbors (channel indices
    [0 .. n_neighbors-1]). *)

val sid : t -> int
(** Current snapshot ID; starts at 0. *)

val state : t -> float
val set_state : t -> float -> unit
(** The local state targeted by the snapshot (managed separately from the
    protocol, cf. "Update state" in Fig. 3). *)

val on_receive : t -> sender:int -> pkt_sid:int -> contribution:float -> int
(** Process an incoming packet carrying snapshot ID [pkt_sid] from
    upstream neighbor [sender]; [contribution] is the packet's
    metric-specific channel-state contribution (e.g. 1.0 for a packet
    count). Implements [onReceiveCS] (or [onReceiveNoCS] when created with
    [channel_state:false], in which case [sender]/[contribution] are
    ignored for channel bookkeeping). Returns the snapshot ID the packet
    must carry onward (the unit's current ID). The caller is responsible
    for updating {!state} to reflect the packet {e after} this call, per
    the "Update state" step. *)

val initiate : t -> sid:int -> unit
(** Multi-initiator entry point: bump the local ID to [sid] (no-op if not
    newer), saving state into the intervening snapshots. *)

val snapshot_value : t -> sid:int -> float option
(** The recorded local state for snapshot [sid], if taken. *)

val channel_state_of : t -> sid:int -> float
(** Accumulated in-flight contributions recorded for snapshot [sid]. *)

val last_seen : t -> int array
(** Copy of the last-seen array (channel-state mode only; all zeros
    otherwise). *)

val finished_through : t -> int
(** Greatest snapshot ID this unit is finished with: with channel state,
    [min last_seen]; without, the current ID. *)

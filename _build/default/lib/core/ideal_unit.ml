type t = {
  n_neighbors : int;
  channel_state : bool;
  mutable sid : int;
  mutable state : float;
  snaps : (int, float) Hashtbl.t;  (* sid -> saved local state *)
  channels : (int, float) Hashtbl.t;  (* sid -> accumulated channel state *)
  last_seen_arr : int array;
}

let create ~n_neighbors ~channel_state =
  if n_neighbors <= 0 then invalid_arg "Ideal_unit.create: need at least one neighbor";
  {
    n_neighbors;
    channel_state;
    sid = 0;
    state = 0.;
    snaps = Hashtbl.create 64;
    channels = Hashtbl.create 64;
    last_seen_arr = Array.make n_neighbors 0;
  }

let sid t = t.sid
let state t = t.state
let set_state t v = t.state <- v

let save_snapshots t ~upto =
  (* "for i <- sid + 1 to pkt.sid do snaps[i] <- state" *)
  for i = t.sid + 1 to upto do
    Hashtbl.replace t.snaps i t.state
  done;
  t.sid <- upto

let add_channel t ~sid ~contribution =
  let cur = Option.value ~default:0. (Hashtbl.find_opt t.channels sid) in
  Hashtbl.replace t.channels sid (cur +. contribution)

let on_receive t ~sender ~pkt_sid ~contribution =
  if pkt_sid > t.sid then save_snapshots t ~upto:pkt_sid
  else if pkt_sid < t.sid && t.channel_state then
    (* In-flight packet: contributes to every snapshot it straddles. *)
    for i = pkt_sid + 1 to t.sid do
      add_channel t ~sid:i ~contribution
    done;
  if t.channel_state then begin
    if sender < 0 || sender >= t.n_neighbors then
      invalid_arg "Ideal_unit.on_receive: bad sender index";
    if pkt_sid > t.last_seen_arr.(sender) then t.last_seen_arr.(sender) <- pkt_sid
  end;
  t.sid

let initiate t ~sid = if sid > t.sid then save_snapshots t ~upto:sid

let snapshot_value t ~sid = Hashtbl.find_opt t.snaps sid

let channel_state_of t ~sid =
  Option.value ~default:0. (Hashtbl.find_opt t.channels sid)

let last_seen t = Array.copy t.last_seen_arr

let finished_through t =
  if t.channel_state then Array.fold_left Stdlib.min t.last_seen_arr.(0) t.last_seen_arr
  else t.sid

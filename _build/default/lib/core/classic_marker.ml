type t = {
  n_in : int;
  n_out : int;
  mutable recorded_state : float option;
  recording : bool array;  (* per incoming channel *)
  channel : float array;
  mutable markers_seen : int;
  mutable markers_sent : int;
}

let create ~n_in ~n_out =
  if n_in < 0 || n_out < 0 then invalid_arg "Classic_marker.create";
  {
    n_in;
    n_out;
    recorded_state = None;
    recording = Array.make (Stdlib.max n_in 1) false;
    channel = Array.make (Stdlib.max n_in 1) 0.;
    markers_seen = 0;
    markers_sent = 0;
  }

let emit_markers t ~send_marker =
  for c = 0 to t.n_out - 1 do
    t.markers_sent <- t.markers_sent + 1;
    send_marker ~out_channel_:c
  done

let record t ~state ~send_marker =
  if t.recorded_state = None then begin
    t.recorded_state <- Some state;
    Array.fill t.recording 0 t.n_in true;
    emit_markers t ~send_marker
  end

let initiate t ~state ~send_marker = record t ~state ~send_marker

let on_packet t ~in_channel_ ~contribution =
  if in_channel_ < 0 || in_channel_ >= t.n_in then
    invalid_arg "Classic_marker.on_packet: bad channel";
  if t.recorded_state <> None && t.recording.(in_channel_) then
    t.channel.(in_channel_) <- t.channel.(in_channel_) +. contribution

let on_marker t ~in_channel_ ~state ~send_marker =
  if in_channel_ < 0 || in_channel_ >= t.n_in then
    invalid_arg "Classic_marker.on_marker: bad channel";
  record t ~state ~send_marker;
  if t.recording.(in_channel_) then begin
    (* FIFO: nothing sent pre-snapshot can still be in flight behind the
       marker, so the channel's record is final. *)
    t.recording.(in_channel_) <- false;
    t.markers_seen <- t.markers_seen + 1
  end

let recorded t = t.recorded_state <> None
let complete t = recorded t && t.markers_seen >= t.n_in
let state t = t.recorded_state
let channel_state t c = t.channel.(c)
let markers_sent t = t.markers_sent

let reset t =
  t.recorded_state <- None;
  Array.fill t.recording 0 (Array.length t.recording) false;
  Array.fill t.channel 0 (Array.length t.channel) 0.;
  t.markers_seen <- 0;
  t.markers_sent <- 0

(** A finalized per-unit snapshot record, produced by the control plane and
    shipped to the snapshot observer. *)

open Speedlight_sim
open Speedlight_dataplane

type t = {
  unit_id : Unit_id.t;
  sid : int;  (** unwrapped snapshot ID *)
  value : float option;
      (** recorded local state; [None] when the snapshot is inconsistent or
          its register could not be recovered *)
  channel : float;  (** accumulated channel (in-flight) state *)
  consistent : bool;
      (** false for snapshots the data plane skipped past while channel
          state was being collected (§6) *)
  inferred : bool;
      (** true when the value was not read from a register but inferred
          from a later snapshot (no-channel-state mode, Fig. 7 l.19–21) *)
  completed_at : Time.t;  (** control-plane time at which it finalized *)
}

val consistent_value : t -> float option
(** [Some v] iff the report is consistent and carries a value. *)

val pp : Format.formatter -> t -> unit

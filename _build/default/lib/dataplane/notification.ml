open Speedlight_sim

type t = {
  unit_id : Unit_id.t;
  former_sid : int;
  new_sid : int;
  neighbor : int option;
  former_last_seen : int option;
  new_last_seen : int option;
  dp_time : Time.t;
  ghost_sid : int;
}

let pp fmt t =
  Format.fprintf fmt "notify[%a sid %d->%d%a @%a]" Unit_id.pp t.unit_id
    t.former_sid t.new_sid
    (fun fmt -> function
      | None -> Format.fprintf fmt ""
      | Some n ->
          Format.fprintf fmt " ls[%d] %s->%s" n
            (match t.former_last_seen with Some v -> string_of_int v | None -> "?")
            (match t.new_last_seen with Some v -> string_of_int v | None -> "?"))
    t.neighbor Time.pp t.dp_time

type 'a t = {
  queues : 'a Queue.t array;
  capacity : int;
  mutable total : int;
  mutable dropped : int;
}

let create ?(cos_levels = 1) ~capacity () =
  if cos_levels <= 0 then invalid_arg "Fifo_queue.create: cos_levels must be positive";
  if capacity <= 0 then invalid_arg "Fifo_queue.create: capacity must be positive";
  {
    queues = Array.init cos_levels (fun _ -> Queue.create ());
    capacity;
    total = 0;
    dropped = 0;
  }

let push t ~cos x =
  if cos < 0 || cos >= Array.length t.queues then
    invalid_arg "Fifo_queue.push: bad CoS level";
  if t.total >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    Queue.push x t.queues.(cos);
    t.total <- t.total + 1;
    true
  end

let pop t =
  (* Highest CoS index = highest priority. *)
  let rec scan i =
    if i < 0 then None
    else if Queue.is_empty t.queues.(i) then scan (i - 1)
    else begin
      t.total <- t.total - 1;
      Some (i, Queue.pop t.queues.(i))
    end
  in
  scan (Array.length t.queues - 1)

let depth t = t.total
let depth_cos t cos = Queue.length t.queues.(cos)
let drops t = t.dropped
let is_empty t = t.total = 0
let cos_levels t = Array.length t.queues

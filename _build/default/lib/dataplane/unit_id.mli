(** Identity of a processing unit.

    The fundamental building block of the snapshot system model (§4.1): a
    per-port, per-direction packet processing unit. *)

type dir = Ingress | Egress

type t = { switch : int; port : int; dir : dir }

val ingress : switch:int -> port:int -> t
val egress : switch:int -> port:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

open Speedlight_sim

type t = {
  uid : int;
  flow_id : int;
  src_host : int;
  dst_host : int;
  size : int;
  cos : int;
  created : Time.t;
  mutable snap : Snapshot_header.t option;
}

let create ~uid ~flow_id ~src_host ~dst_host ~size ?(cos = 0) ~created () =
  { uid; flow_id; src_host; dst_host; size; cos; created; snap = None }

let wire_size ~with_channel_state t =
  match t.snap with
  | None -> t.size
  | Some _ -> t.size + Snapshot_header.overhead_bytes with_channel_state

let pp fmt t =
  Format.fprintf fmt "pkt#%d flow=%d %d->%d %dB%a" t.uid t.flow_id t.src_host
    t.dst_host t.size
    (fun fmt -> function
      | None -> Format.fprintf fmt ""
      | Some h -> Format.fprintf fmt " %a" Snapshot_header.pp h)
    t.snap

module Gen = struct
  type packet = t
  type t = { mutable next : int }

  let create () = { next = 0 }

  let next_uid t =
    let u = t.next in
    t.next <- u + 1;
    u
end

lib/dataplane/sketch.mli:

lib/dataplane/unit_id.mli: Format Map Set

lib/dataplane/snapshot_header.ml: Format

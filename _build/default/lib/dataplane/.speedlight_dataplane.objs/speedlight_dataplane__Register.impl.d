lib/dataplane/register.ml: Array

lib/dataplane/counter.ml: Ewma Float Packet Printf Register Sketch Speedlight_sim Speedlight_stats Time

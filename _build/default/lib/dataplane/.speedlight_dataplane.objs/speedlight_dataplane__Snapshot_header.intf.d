lib/dataplane/snapshot_header.mli: Format

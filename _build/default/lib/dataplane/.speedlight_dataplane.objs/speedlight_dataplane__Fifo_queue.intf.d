lib/dataplane/fifo_queue.mli:

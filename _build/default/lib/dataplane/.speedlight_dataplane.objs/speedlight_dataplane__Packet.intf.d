lib/dataplane/packet.mli: Format Snapshot_header Speedlight_sim Time

lib/dataplane/sketch.ml: Array List Printf Register Stdlib

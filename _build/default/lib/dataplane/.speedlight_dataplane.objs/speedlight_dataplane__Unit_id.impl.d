lib/dataplane/unit_id.ml: Format Int Map Set

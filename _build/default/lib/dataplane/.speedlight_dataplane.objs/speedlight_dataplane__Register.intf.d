lib/dataplane/register.mli:

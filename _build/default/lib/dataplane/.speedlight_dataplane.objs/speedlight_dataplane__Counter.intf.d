lib/dataplane/counter.mli: Packet Sketch Speedlight_sim Time

lib/dataplane/notification.mli: Format Speedlight_sim Time Unit_id

lib/dataplane/fifo_queue.ml: Array Queue

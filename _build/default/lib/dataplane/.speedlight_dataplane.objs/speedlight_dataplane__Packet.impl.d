lib/dataplane/packet.ml: Format Snapshot_header Speedlight_sim Time

lib/dataplane/notification.ml: Format Speedlight_sim Time Unit_id

(** Data-plane → control-plane snapshot notifications (§5.3).

    After any update of either the local snapshot ID or a Last Seen entry,
    the data plane exports a notification carrying the {e former} value of
    the updated Last Seen entry along with the former and new snapshot ID
    (all four values are needed by the Fig. 7 control-plane logic, in
    particular for rollover-aware comparisons). *)

open Speedlight_sim

type t = {
  unit_id : Unit_id.t;
  former_sid : int;
  new_sid : int;
  neighbor : int option;
      (** which Last Seen entry changed, if any ([None] for pure snapshot-ID
          updates and for notifications from units without channel state) *)
  former_last_seen : int option;
  new_last_seen : int option;
  dp_time : Time.t;  (** data-plane timestamp at generation *)
  ghost_sid : int;  (** unbounded new ID — instrumentation only *)
}

val pp : Format.formatter -> t -> unit

(** Simulated packets.

    A packet is a mutable record threaded through the network: hosts create
    them, the edge switch attaches a snapshot header, processing units
    rewrite the header, and the last snapshot-enabled device strips it. *)

open Speedlight_sim

type t = {
  uid : int;  (** globally unique, for tracing *)
  flow_id : int;  (** flow identifier (hashed for ECMP) *)
  src_host : int;
  dst_host : int;
  size : int;  (** bytes, payload + base headers *)
  cos : int;  (** class of service, selects the CoS sub-channel *)
  created : Time.t;
  mutable snap : Snapshot_header.t option;  (** Speedlight header, if any *)
}

val create :
  uid:int ->
  flow_id:int ->
  src_host:int ->
  dst_host:int ->
  size:int ->
  ?cos:int ->
  created:Time.t ->
  unit ->
  t

val wire_size : with_channel_state:bool -> t -> int
(** Size on the wire including the snapshot header overhead when one is
    attached. *)

val pp : Format.formatter -> t -> unit

module Gen : sig
  (** A uid source for packet creation. *)

  type packet = t
  type t

  val create : unit -> t
  val next_uid : t -> int
end

lib/sim/rng.mli:

lib/sim/dist.ml: Array Float List Printf Rng String

lib/sim/heap.mli:

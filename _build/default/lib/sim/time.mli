(** Simulated time.

    All simulation timestamps and durations are integer nanoseconds. Using a
    plain [int] (63-bit on 64-bit platforms) gives us ~292 years of range,
    far beyond any experiment, while keeping arithmetic allocation-free. *)

type t = int
(** A point in simulated time, or a duration, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_us_float : float -> t
(** [of_us_float x] converts a (possibly fractional) number of microseconds
    to nanoseconds, rounding to nearest. *)

val of_ns_float : float -> t
(** [of_ns_float x] rounds a float nanosecond value to the nearest tick. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val add : t -> t -> t
val sub : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Pretty-print with an adaptive unit (ns, us, ms or s). *)

val to_string : t -> string

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: 62 random bits modulo bound has
     negligible bias for bounds far below 2^62. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits scaled to [0,1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

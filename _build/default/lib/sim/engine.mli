(** Discrete-event simulation engine.

    Events are closures scheduled at absolute or relative simulated times.
    Events scheduled for the same instant execute in scheduling order, which
    makes runs deterministic for a given seed. The engine is single-threaded
    and re-entrant: event handlers may schedule further events. *)

type t

type handle
(** A cancellation handle for a scheduled event. *)

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] at absolute time [at]. Scheduling in the
    past raises [Invalid_argument]. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] runs [f] [delay] after the current time.
    Negative delays raise [Invalid_argument]. *)

val cancel : handle -> unit
(** Cancel a pending event; cancelling a fired or cancelled event is a
    no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val run : t -> unit
(** Run until the event queue drains. *)

val run_until : t -> Time.t -> unit
(** [run_until t deadline] processes events with time <= [deadline], then
    advances the clock to [deadline]. Remaining events stay queued. *)

val step : t -> bool
(** Execute the single next event. Returns [false] if none remained. *)

(** A minimal binary min-heap, keyed by [(int, int)] pairs.

    Used as the event queue of the simulation {!Engine}: the primary key is
    the event time, the secondary key a sequence number guaranteeing FIFO
    order among events scheduled for the same instant (determinism). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** Insert an element with primary key [key] and tie-breaker [seq]. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(key, seq, value)], or [None] if empty. *)

val peek_key : 'a t -> int option
(** The minimum primary key without removing it. *)

val clear : 'a t -> unit

(** Deterministic pseudo-random number generation.

    A self-contained SplitMix64 generator. Every stochastic component of the
    simulator draws from an explicit [Rng.t] so that simulations are exactly
    reproducible from a seed, and independent subsystems can be given
    independent streams via {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Two generators
    created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator duplicating [t]'s current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Use to give subsystems their own streams. *)

val bits64 : t -> int64
(** The next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

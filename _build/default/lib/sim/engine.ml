type event = { f : unit -> unit; mutable cancelled : bool }

type handle = event

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  queue : event Heap.t;
}

let create () = { clock = Time.zero; seq = 0; queue = Heap.create () }
let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is in the past (now %d)" at t.clock);
  let ev = { f; cancelled = false } in
  Heap.push t.queue ~key:at ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  ev

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(Time.add t.clock delay) f

let cancel ev = ev.cancelled <- true
let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, _, ev) ->
      t.clock <- at;
      if not ev.cancelled then ev.f ();
      true

let run t = while step t do () done

let run_until t deadline =
  let continue = ref true in
  while !continue do
    match Heap.peek_key t.queue with
    | Some k when k <= deadline -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if deadline > t.clock then t.clock <- deadline

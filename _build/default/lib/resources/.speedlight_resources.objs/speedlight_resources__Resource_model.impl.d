lib/resources/resource_model.ml: Float Format List Printf

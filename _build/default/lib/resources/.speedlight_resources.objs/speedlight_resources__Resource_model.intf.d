lib/resources/resource_model.mli: Format

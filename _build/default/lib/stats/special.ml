(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* Continued fraction for the incomplete beta function (Numerical Recipes
   "betacf"). *)
let betacf a b x =
  let max_iter = 200 in
  let eps = 3e-14 in
  let fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let converged = ref false in
  while (not !converged) && !m <= max_iter do
    let fm = float_of_int !m in
    let m2 = 2.0 *. fm in
    let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then converged := true;
    incr m
  done;
  !h

let incomplete_beta ~a ~b x =
  if x < 0.0 || x > 1.0 then invalid_arg "Special.incomplete_beta: x out of range";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let lbeta =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then lbeta *. betacf a b x /. a
    else 1.0 -. (lbeta *. betacf b a (1.0 -. x) /. b)
  end

let student_t_sf ~df t =
  if df <= 0.0 then invalid_arg "Special.student_t_sf: df must be positive";
  let t2 = t *. t in
  incomplete_beta ~a:(df /. 2.0) ~b:0.5 (df /. (df +. t2))

let erf x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
         *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))

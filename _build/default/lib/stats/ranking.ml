let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) idx;
  let out = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    (* Find the tie group [i, j). *)
    let j = ref (!i + 1) in
    while !j < n && xs.(idx.(!j)) = xs.(idx.(!i)) do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j + 1) /. 2. in
    for k = !i to !j - 1 do
      out.(idx.(k)) <- avg_rank
    done;
    i := !j
  done;
  out

let tie_correction xs =
  let n = Array.length xs in
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let acc = ref 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while !j < n && sorted.(!j) = sorted.(!i) do
      incr j
    done;
    let g = float_of_int (!j - !i) in
    acc := !acc +. ((g *. g *. g) -. g);
    i := !j
  done;
  !acc

(** ASCII chart rendering.

    The benchmark harness prints each figure both as a numeric table and
    as an ASCII plot, so the *shape* the paper shows (crossovers, tails,
    scaling laws) is visible directly in the terminal output. *)

type scale = Linear | Log10

val plot_xy :
  ?width:int ->
  ?height:int ->
  ?x_scale:scale ->
  ?y_scale:scale ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) array) list ->
  string
(** Render one or more named series of (x, y) points on a shared canvas.
    Each series gets its own marker character; a legend maps markers to
    names. Non-finite or non-positive points are skipped under log
    scales. Raises [Invalid_argument] if no series has plottable points. *)

val plot_cdfs :
  ?width:int -> ?height:int -> ?x_scale:scale -> ?x_label:string ->
  (string * Cdf.t) list -> string
(** Convenience: plot ECDF staircases (y in [0,1]). *)

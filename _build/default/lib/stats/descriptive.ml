let check name xs = if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty input")

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check "variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let population_stddev xs =
  check "population_stddev" xs;
  let n = Array.length xs in
  let m = mean xs in
  let acc = ref 0. in
  Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
  sqrt (!acc /. float_of_int n)

let min xs =
  check "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check "max" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile xs p =
  check "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0. then 0. else stddev xs /. m

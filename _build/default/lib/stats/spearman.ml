type result = { rho : float; p_value : float; n : int }

let pearson xs ys =
  let n = Array.length xs in
  let fn = float_of_int n in
  let mx = Array.fold_left ( +. ) 0. xs /. fn in
  let my = Array.fold_left ( +. ) 0. ys /. fn in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. || !syy = 0. then 0. else !sxy /. sqrt (!sxx *. !syy)

let correlate xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Spearman.correlate: length mismatch";
  if n < 2 then invalid_arg "Spearman.correlate: need at least 2 samples";
  let rx = Ranking.ranks xs and ry = Ranking.ranks ys in
  let rho = pearson rx ry in
  let p_value =
    if n < 3 || Float.abs rho >= 1.0 then if Float.abs rho >= 1.0 && n >= 3 then 0.0 else 1.0
    else begin
      let df = float_of_int (n - 2) in
      let t = rho *. sqrt (df /. (1.0 -. (rho *. rho))) in
      Special.student_t_sf ~df (Float.abs t)
    end
  in
  { rho; p_value; n }

let significant ?(alpha = 0.1) r = r.p_value < alpha

let matrix series =
  let k = Array.length series in
  Array.init k (fun i ->
      Array.init k (fun j ->
          if i = j then { rho = 1.0; p_value = 0.0; n = Array.length series.(i) }
          else correlate series.(i) series.(j)))

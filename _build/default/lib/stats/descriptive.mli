(** Descriptive statistics over float arrays.

    All functions raise [Invalid_argument] on empty input unless stated
    otherwise. Inputs are never mutated. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton input. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val population_stddev : float array -> float
(** Standard deviation with n denominator — this is what the paper computes
    across a switch's uplink ports in Fig. 12 (the ports are the whole
    population, not a sample). *)

val min : float array -> float
val max : float array -> float
val sum : float array -> float

val median : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. *)

val coefficient_of_variation : float array -> float
(** stddev / mean; 0 when the mean is 0. *)

lib/stats/spearman.ml: Array Float Ranking Special

lib/stats/ranking.ml: Array Float

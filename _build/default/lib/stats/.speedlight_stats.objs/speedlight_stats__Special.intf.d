lib/stats/special.mli:

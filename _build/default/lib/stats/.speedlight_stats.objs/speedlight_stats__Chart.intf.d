lib/stats/chart.mli: Cdf

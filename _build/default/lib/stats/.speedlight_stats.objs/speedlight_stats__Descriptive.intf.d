lib/stats/descriptive.mli:

lib/stats/chart.ml: Array Buffer Cdf Float List Printf Stdlib String

lib/stats/ranking.mli:

lib/stats/ewma.mli:

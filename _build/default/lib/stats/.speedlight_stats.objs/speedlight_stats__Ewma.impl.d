lib/stats/ewma.ml:

lib/stats/spearman.mli:

type scale = Linear | Log10

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let transform = function
  | Linear -> fun v -> v
  | Log10 -> fun v -> log10 v

let plottable scale (x, y) =
  Float.is_finite x && Float.is_finite y
  && (scale = Linear || x > 0.)

let plot_xy ?(width = 64) ?(height = 16) ?(x_scale = Linear) ?(y_scale = Linear)
    ?(x_label = "") ?(y_label = "") series =
  if width < 8 || height < 4 then invalid_arg "Chart.plot_xy: canvas too small";
  let tx = transform x_scale and ty = transform y_scale in
  let points =
    List.map
      (fun (name, pts) ->
        ( name,
          Array.of_list
            (List.filter_map
               (fun (x, y) ->
                 if plottable x_scale (x, y) && plottable y_scale (y, x) then
                   Some (tx x, ty y)
                 else None)
               (Array.to_list pts)) ))
      series
  in
  let all = List.concat_map (fun (_, pts) -> Array.to_list pts) points in
  if all = [] then invalid_arg "Chart.plot_xy: nothing to plot";
  let xs = List.map fst all and ys = List.map snd all in
  let fold f l = List.fold_left f (List.hd l) l in
  let x0 = fold Float.min xs and x1 = fold Float.max xs in
  let y0 = fold Float.min ys and y1 = fold Float.max ys in
  let xspan = if x1 > x0 then x1 -. x0 else 1. in
  let yspan = if y1 > y0 then y1 -. y0 else 1. in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si (_, pts) ->
      let m = markers.(si mod Array.length markers) in
      Array.iter
        (fun (x, y) ->
          let cx =
            int_of_float (Float.round ((x -. x0) /. xspan *. float_of_int (width - 1)))
          in
          let cy =
            int_of_float (Float.round ((y -. y0) /. yspan *. float_of_int (height - 1)))
          in
          (* y axis grows upward: row 0 is the top of the canvas. *)
          grid.(height - 1 - cy).(cx) <- m)
        pts)
    points;
  let b = Buffer.create ((width + 16) * (height + 4)) in
  let unscale_y v = match y_scale with Linear -> v | Log10 -> 10. ** v in
  let unscale_x v = match x_scale with Linear -> v | Log10 -> 10. ** v in
  if y_label <> "" then Buffer.add_string b (y_label ^ "\n");
  Array.iteri
    (fun row line ->
      let yv =
        y1 -. (float_of_int row /. float_of_int (height - 1) *. yspan)
      in
      Buffer.add_string b (Printf.sprintf "%10.3g |" (unscale_y yv));
      Buffer.add_string b (String.init width (fun i -> line.(i)));
      Buffer.add_char b '\n')
    grid;
  Buffer.add_string b (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string b
    (Printf.sprintf "%10s  %.3g%s%.3g  %s\n" "" (unscale_x x0)
       (String.make (Stdlib.max 1 (width - 16)) ' ')
       (unscale_x x1) x_label);
  Buffer.add_string b "  legend: ";
  List.iteri
    (fun si (name, _) ->
      Buffer.add_string b
        (Printf.sprintf "%s[%c] %s" (if si > 0 then "  " else "")
           markers.(si mod Array.length markers) name))
    points;
  Buffer.add_char b '\n';
  Buffer.contents b

let plot_cdfs ?width ?height ?x_scale ?(x_label = "") series =
  let to_points (name, cdf) =
    (name, Array.of_list (Cdf.sampled_points cdf ~n:64))
  in
  plot_xy ?width ?height ?x_scale ~y_label:"CDF" ~x_label
    (List.map to_points series)

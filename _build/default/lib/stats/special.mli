(** Special mathematical functions needed for significance tests. *)

val log_gamma : float -> float
(** Natural log of the Gamma function (Lanczos approximation). *)

val incomplete_beta : a:float -> b:float -> float -> float
(** Regularized incomplete beta function I_x(a, b), for x in [\[0,1\]]
    (continued-fraction evaluation). *)

val student_t_sf : df:float -> float -> float
(** Two-sided survival function of Student's t: P(|T| >= t) with [df]
    degrees of freedom. This is the p-value of a two-sided t test. *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26 rational approximation,
    |error| < 1.5e-7). *)

val normal_cdf : float -> float
(** Standard normal CDF. *)

(** Exponentially-weighted moving averages.

    Two implementations:
    - {!t}: the textbook EWMA with arbitrary decay factor;
    - {!Two_phase}: the register-friendly approximation the paper deploys on
      the Tofino (§8, "Counters"), which folds pairs of interarrival times
      and halves, yielding a decay factor of 0.5 updated on every other
      packet. We reproduce it bug-for-bug (including its use of integer
      registers) so snapshotted values match the hardware semantics. *)

type t

val create : decay:float -> t
(** [create ~decay] with decay in (0, 1]: [v' = decay * x + (1-decay) * v]. *)

val update : t -> float -> unit
val value : t -> float
val reset : t -> unit

module Two_phase : sig
  (** The paper's two-register EWMA of packet interarrival time.

      Pseudocode from §8 (underlined variables are stateful registers):
      {v
        interarrival = pkt_timestamp - last_ts[port]
        last_ts[port] = pkt_timestamp
        if packet_count[port] is even:
          temp_ewma[port] += interarrival
        else:
          temp_ewma[port] /= 2
          ewma[port] = (ewma[port] + temp_ewma[port]) / 2
      v}
      Functionally an EWMA of per-pair average interarrival with decay 0.5. *)

  type t

  val create : unit -> t

  val on_packet : t -> now:int -> unit
  (** Record a packet arrival at timestamp [now] (nanoseconds). *)

  val value : t -> float
  (** Current EWMA of interarrival time in nanoseconds; 0 before two
      updates have completed. *)

  val packet_count : t -> int

  val reset : t -> unit
end

type t = { decay : float; mutable v : float; mutable initialized : bool }

let create ~decay =
  if decay <= 0. || decay > 1. then invalid_arg "Ewma.create: decay out of (0,1]";
  { decay; v = 0.; initialized = false }

let update t x =
  if t.initialized then t.v <- (t.decay *. x) +. ((1. -. t.decay) *. t.v)
  else begin
    t.v <- x;
    t.initialized <- true
  end

let value t = t.v

let reset t =
  t.v <- 0.;
  t.initialized <- false

module Two_phase = struct
  (* Integer registers, mirroring the P4 implementation: timestamps and
     accumulators are integer nanoseconds, halving is an integer shift. *)
  type t = {
    mutable last_ts : int;
    mutable packet_count : int;
    mutable temp_ewma : int;
    mutable ewma : int;
    mutable seen_first : bool;
  }

  let create () =
    { last_ts = 0; packet_count = 0; temp_ewma = 0; ewma = 0; seen_first = false }

  let on_packet t ~now =
    if not t.seen_first then begin
      (* The very first packet only seeds last_ts: there is no interarrival
         to record yet. *)
      t.last_ts <- now;
      t.seen_first <- true
    end
    else begin
      let interarrival = now - t.last_ts in
      t.last_ts <- now;
      if t.packet_count land 1 = 0 then t.temp_ewma <- t.temp_ewma + interarrival
      else begin
        t.temp_ewma <- t.temp_ewma asr 1;
        t.ewma <- (t.ewma + t.temp_ewma) asr 1
      end;
      t.packet_count <- t.packet_count + 1
    end

  let value t =
    if t.ewma = 0 && t.packet_count >= 2 then float_of_int t.temp_ewma
    else float_of_int t.ewma

  let packet_count t = t.packet_count

  let reset t =
    t.last_ts <- 0;
    t.packet_count <- 0;
    t.temp_ewma <- 0;
    t.ewma <- 0;
    t.seen_first <- false
end

(** Spearman rank correlation with significance.

    The paper's Fig. 13 computes pairwise Spearman correlations between
    per-port packet-rate time series and keeps coefficients whose
    significance level is below ρ = 0.1. *)

type result = {
  rho : float;      (** correlation coefficient in [-1, 1] *)
  p_value : float;  (** two-sided p-value (t approximation) *)
  n : int;          (** number of paired samples *)
}

val correlate : float array -> float array -> result
(** [correlate xs ys] computes Spearman's rho between two equal-length
    series (length >= 3 required for a p-value; shorter input yields
    [p_value = 1.0]). Ties are handled by fractional ranking and the
    Pearson-of-ranks formulation. *)

val significant : ?alpha:float -> result -> bool
(** [significant ~alpha r] is [true] when [r.p_value < alpha]
    (default [alpha = 0.1], matching the paper). *)

val matrix : float array array -> result array array
(** [matrix series] computes the full pairwise correlation matrix of the
    given time series; entry [i][j] correlates [series.(i)] with
    [series.(j)]. Diagonal entries have [rho = 1.0]. *)

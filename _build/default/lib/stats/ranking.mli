(** Ranking with ties (fractional/average ranks).

    Building block for the Spearman correlation used in the paper's Fig. 13
    analysis. *)

val ranks : float array -> float array
(** [ranks xs] assigns 1-based ranks; equal values receive the average of
    the ranks they span (standard "fractional ranking"). The input is not
    mutated. *)

val tie_correction : float array -> float
(** Sum over tie groups of [(g^3 - g)] where [g] is the group size — the
    correction term used in the significance computation for tied data. *)

(** Figure 9: synchronization of network-wide measurements.

    Reproduces the CDF of snapshot synchronization — the delta between the
    earliest and latest data-plane notification timestamps of each snapshot
    ID — on the 4-switch leaf–spine testbed, for Speedlight with and
    without channel state, against the traditional counter-polling
    baseline (first-to-last poll spread).

    Paper's numbers: snapshot median ≈ 6.4 µs both ways, max 22 µs (no
    channel state) / 27 µs (with); polling median 2.6 ms. *)

open Speedlight_stats

type result = {
  no_cs : Cdf.t;  (** synchronization in µs, Speedlight w/o channel state *)
  with_cs : Cdf.t;  (** ... with channel state *)
  polling : Cdf.t;  (** first-to-last spread of full polling sweeps, µs *)
}

val run : ?quick:bool -> ?seed:int -> unit -> result

val print : Format.formatter -> result -> unit
(** The CDF series plus a paper-vs-measured summary line. *)

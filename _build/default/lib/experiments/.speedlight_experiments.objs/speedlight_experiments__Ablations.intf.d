lib/experiments/ablations.mli: Cdf Format Speedlight_stats

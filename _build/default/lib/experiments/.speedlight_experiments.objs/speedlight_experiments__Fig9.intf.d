lib/experiments/fig9.mli: Cdf Format Speedlight_stats

lib/experiments/table1.mli: Format Resource_model Speedlight_resources

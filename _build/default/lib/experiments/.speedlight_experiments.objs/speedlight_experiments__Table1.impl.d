lib/experiments/table1.ml: Common Format List Resource_model Speedlight_resources

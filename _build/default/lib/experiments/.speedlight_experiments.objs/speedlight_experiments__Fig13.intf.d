lib/experiments/fig13.mli: Format Speedlight_dataplane Unit_id

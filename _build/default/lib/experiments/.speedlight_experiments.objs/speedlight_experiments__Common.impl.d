lib/experiments/common.ml: Config Engine Format List Net Observer Report Speedlight_core Speedlight_dataplane Speedlight_net Speedlight_sim Speedlight_topology Stdlib String Time Topology Unit_id

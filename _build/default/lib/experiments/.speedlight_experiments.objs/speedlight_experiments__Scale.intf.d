lib/experiments/scale.mli: Format

lib/experiments/export.ml: Array Cdf Fig10 Fig11 Fig12 Fig13 Fig9 Filename Fun List Printf Resource_model Scale Speedlight_dataplane Speedlight_resources Speedlight_stats String Table1

lib/experiments/fig12.mli: Cdf Format Speedlight_stats

lib/experiments/fig11.ml: Array Chart Common Descriptive Dist Float Format List Ptp Rng Speedlight_clock Speedlight_sim Speedlight_stats Stdlib

lib/experiments/fig10.ml: Array Chart Common Config Control_plane Engine Format List Net Snapshot_unit Speedlight_core Speedlight_net Speedlight_sim Speedlight_stats Speedlight_topology Time Topology

lib/experiments/export.mli: Fig10 Fig11 Fig12 Fig13 Fig9 Scale Speedlight_stats Table1

(** Figure 12: evaluating load balancing with snapshots vs. polling.

    For each workload (Hadoop, GraphX, Memcache) and each load-balancing
    policy (flow-hash ECMP, flowlet switching), the testbed snapshots an
    EWMA of packet interarrival time on every uplink port and computes the
    standard deviation across the uplinks of each leaf switch — the
    "how balanced is the network *right now*" metric. The same statistic
    computed from asynchronous polling sweeps is the baseline.

    Paper's qualitative results: (a) Hadoop — flowlets improve balance
    substantially, but polling shows little-to-no gain; (b) GraphX —
    polling consistently underestimates the imbalance; (c) Memcache — the
    workload is very even and polling *overestimates* the imbalance. *)

open Speedlight_stats

type app = Hadoop | Graphx | Memcache

val app_name : app -> string

type app_result = {
  app : app;
  ecmp_snap : Cdf.t;  (** stddev of uplink EWMA interarrival, µs *)
  ecmp_poll : Cdf.t;
  flowlet_snap : Cdf.t;
  flowlet_poll : Cdf.t;
}

type result = app_result list

val run : ?quick:bool -> ?seed:int -> unit -> result
(** Runs all 3 workloads x 2 policies (6 simulations). *)

val run_app : ?quick:bool -> ?seed:int -> app -> app_result

val print : Format.formatter -> result -> unit

(** Figure 10: maximum sustained snapshot rate vs. ports per router.

    A single switch takes snapshots at a fixed interval; frequencies that
    are too high build up the control plane's notification queue until it
    drops. The plot reports the highest frequency without drops for port
    counts 4–64 (no channel state). The bottleneck is the unoptimized
    control plane's per-notification processing latency, not the ASIC–CPU
    channel — exactly as modeled. Paper: > 70 snapshots/s at 64 ports. *)

type point = {
  ports : int;
  max_rate_hz : float;  (** highest drop-free sustained rate found *)
}

type result = point list

val run : ?quick:bool -> ?seed:int -> unit -> result

val print : Format.formatter -> result -> unit

(** Figure 11: average snapshot synchronization in larger deployments.

    A Monte-Carlo simulation over the testbed-calibrated latency
    distributions (the paper's own methodology: "Distributions for all of
    these values were collected from our hardware testbed"): every router
    draws a residual PTP clock error; every one of its 64 ports draws an
    OS-scheduling jitter and a CPU→ASIC initiation latency. Network-wide
    synchronization of one snapshot is the spread between the earliest and
    latest per-port initiation instants; the figure reports the average
    over many snapshots vs. the number of routers.

    Paper: grows with network size but asymptotically, staying under
    typical RTTs (< 100 µs) even at 10,000 routers. *)

type point = {
  routers : int;
  avg_sync_us : float;
  p99_sync_us : float;
}

type result = point list

val run : ?quick:bool -> ?seed:int -> ?ports_per_router:int -> unit -> result

val print : Format.formatter -> result -> unit

open Speedlight_resources

type row = {
  variant : Resource_model.variant;
  usage_64 : Resource_model.usage;
  usage_14 : Resource_model.usage;
}

type result = row list

let run ?quick:_ () =
  List.map
    (fun v ->
      {
        variant = v;
        usage_64 = Resource_model.usage v ~ports:64;
        usage_14 = Resource_model.usage v ~ports:14;
      })
    Resource_model.all_variants

let print fmt rows =
  Common.pp_header fmt "Table 1: Speedlight data-plane resource usage (64 ports)";
  Resource_model.pp_table fmt ~ports:64;
  let cs = List.find (fun r -> r.variant = Resource_model.Channel_state) rows in
  Format.fprintf fmt
    "@.14-port wraparound+channel-state config (Section 7.1): %.0f KB SRAM, %.0f KB TCAM (paper: 638 / 90)@."
    cs.usage_14.Resource_model.sram_kb cs.usage_14.Resource_model.tcam_kb;
  Format.fprintf fmt
    "paper anchors (64 ports): SRAM 606/671/770 KB, TCAM 42/59/244 KB, <25%% of any chip resource@."

(** Extension: end-to-end validation of Fig. 11's methodology.

    Fig. 11 extrapolates synchronization to large networks with a
    Monte-Carlo simulation over testbed-measured latency distributions.
    This experiment cross-checks that methodology at sizes we *can* run
    end-to-end: it deploys the full protocol (real initiations, clocks,
    piggybacking, notifications) on k-ary fat trees and compares the
    measured synchronization of real snapshots against the Monte-Carlo
    prediction for the same device count. Agreement here is evidence the
    Fig. 11 extrapolation is sound. *)

type point = {
  k : int;  (** fat-tree arity *)
  switches : int;
  units : int;
  measured_avg_us : float;  (** real-protocol average sync spread *)
  measured_max_us : float;
  predicted_avg_us : float;  (** Fig. 11-style Monte-Carlo, same size *)
}

type result = point list

val run : ?quick:bool -> ?seed:int -> unit -> result
val print : Format.formatter -> result -> unit

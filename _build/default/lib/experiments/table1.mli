(** Table 1: Speedlight data-plane resource usage on the Tofino.

    Rendered from the analytic {!Speedlight_resources.Resource_model},
    which is anchored to the paper's published numbers (see its
    documentation). Also prints the §7.1 14-port configuration. *)

open Speedlight_resources

type row = {
  variant : Resource_model.variant;
  usage_64 : Resource_model.usage;
  usage_14 : Resource_model.usage;
}

type result = row list

val run : ?quick:bool -> unit -> result
val print : Format.formatter -> result -> unit

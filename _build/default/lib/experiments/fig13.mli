(** Figure 13: detecting synchronized application traffic.

    Runs the GraphX workload, snapshots an EWMA of packet rate at the
    egress of every port across many rounds, and computes pairwise
    Spearman correlations between the per-port time series (keeping
    coefficients significant at p < 0.1). The polling baseline computes
    the same matrix from asynchronous sweeps.

    Paper's findings: snapshots find ~43% more statistically significant
    port pairs; with snapshots the expected ground truths hold — no
    significant correlation with the master server's port, and strong
    positive correlations between same-ECMP-path port pairs — while
    polling misses or even inverts the ECMP correlations. *)

open Speedlight_dataplane

type matrix = {
  units : Unit_id.t array;
  rho : float array array;
  significant : bool array array;
}

type result = {
  snap : matrix;
  poll : matrix;
  snap_sig_pairs : int;
  poll_sig_pairs : int;
  ecmp_pairs : (int * int) list;  (** indices into [units] of uplink pairs *)
  master_idx : int;  (** index of the port egressing to the master server *)
}

val run : ?quick:bool -> ?seed:int -> unit -> result

val extra_significant_pct : result -> float
(** How many more significant pairs snapshots found, in percent. *)

val ecmp_check : matrix -> (int * int) list -> int
(** Number of ECMP pairs with a significant positive correlation. *)

val master_significant : result -> matrix -> int
(** Significant correlations involving the master port (expected: 0). *)

val print : Format.formatter -> result -> unit

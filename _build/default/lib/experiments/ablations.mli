(** Ablation studies for the design decisions DESIGN.md calls out.

    These do not reproduce a specific paper figure; they quantify why
    Speedlight is built the way it is:

    - {b multi- vs single-initiator}: §6 argues snapshots must start at
      every device simultaneously. The ablation initiates at one switch
      only and lets piggybacking spread the snapshot, measuring the
      synchronization penalty and how many units the snapshot never
      reaches (host-facing ingress units have no marked upstream).
    - {b channel-state cost}: notification volume per snapshot with and
      without channel state — the control-plane load the feature adds. *)

open Speedlight_stats

type initiator_result = {
  multi_sync : Cdf.t;  (** sync spread, µs, all-device initiation *)
  single_sync : Cdf.t;  (** sync spread, µs, one initiating switch *)
  single_unreached : int;  (** units the single-initiator snapshot misses *)
}

val run_initiator : ?quick:bool -> ?seed:int -> unit -> initiator_result

type notif_result = {
  no_cs_per_snapshot : float;  (** notifications per snapshot, no chnl *)
  with_cs_per_snapshot : float;
}

val run_notifications : ?quick:bool -> ?seed:int -> unit -> notif_result

type marker_overhead = {
  directed_channels : int;
      (** processing-unit channels in the testbed (internal + wire) *)
  marker_bytes_per_snapshot : int;
      (** classic Chandy–Lamport: one 64 B marker per directed channel *)
  header_bytes_per_packet : int;  (** Speedlight piggyback header *)
  breakeven_pkts_per_snapshot : float;
      (** traffic volume per snapshot at which piggybacking starts costing
          more wire bytes than markers — below it piggybacking is strictly
          cheaper, and it additionally tolerates loss and concurrent
          initiators *)
}

val run_marker_overhead : ?channel_state:bool -> unit -> marker_overhead
(** Compare the classic marker-based snapshot's message overhead with
    Speedlight's piggybacking on the paper's testbed topology. *)

val print_initiator : Format.formatter -> initiator_result -> unit
val print_notifications : Format.formatter -> notif_result -> unit
val print_marker_overhead : Format.formatter -> marker_overhead -> unit

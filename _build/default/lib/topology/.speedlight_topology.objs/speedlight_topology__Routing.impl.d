lib/topology/routing.ml: Array Format Hashtbl Int List Printf Queue Rng Speedlight_sim Time Topology

lib/topology/topology.mli: Speedlight_sim Time

lib/topology/routing.mli: Format Rng Speedlight_sim Time Topology

lib/topology/topology.ml: Array List Option Printf Speedlight_sim Time

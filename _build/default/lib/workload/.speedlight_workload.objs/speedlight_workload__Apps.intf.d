lib/workload/apps.mli: Dist Engine Rng Speedlight_sim Time Traffic

lib/workload/traffic.mli: Dist Engine Rng Speedlight_sim Time

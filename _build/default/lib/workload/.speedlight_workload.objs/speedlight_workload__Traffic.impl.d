lib/workload/traffic.ml: Dist Engine Float Speedlight_sim Time

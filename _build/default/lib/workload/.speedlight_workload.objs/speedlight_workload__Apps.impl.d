lib/workload/apps.ml: Array Dist Engine Float List Rng Speedlight_sim Time Traffic

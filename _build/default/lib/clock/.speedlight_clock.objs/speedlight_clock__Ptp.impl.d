lib/clock/ptp.ml: Clock Dist Engine Float Rng Speedlight_sim Time

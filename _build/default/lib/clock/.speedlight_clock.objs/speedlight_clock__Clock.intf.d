lib/clock/clock.mli: Speedlight_sim Time

lib/clock/ptp.mli: Clock Dist Engine Rng Speedlight_sim Time

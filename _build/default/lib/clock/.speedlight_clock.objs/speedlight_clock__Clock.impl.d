lib/clock/clock.ml: Speedlight_sim Time

(* Tests for the traffic primitives and the synthetic application
   workloads. The workloads drive a recording sink instead of a network. *)

open Speedlight_sim
open Speedlight_workload

type sent = { s_src : int; s_dst : int; s_size : int; s_flow : int; s_at : Time.t }

let recording_sink engine log ~src ~dst ~size ~flow_id =
  log := { s_src = src; s_dst = dst; s_size = size; s_flow = flow_id; s_at = Engine.now engine }
    :: !log

let test_flow_ids_unique () =
  let f = Traffic.flow_ids () in
  let a = Traffic.next_flow f and b = Traffic.next_flow f in
  Alcotest.(check bool) "distinct" true (a <> b)

let test_send_flow_count_and_order () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let log = ref [] in
  let done_ = ref false in
  Traffic.send_flow ~engine ~rng ~send:(recording_sink engine log) ~src:1 ~dst:2
    ~flow_id:9 ~n_pkts:25 ~pkt_size:1000 ~gap:(Dist.constant 100.)
    ~on_done:(fun () -> done_ := true)
    ();
  Engine.run engine;
  Alcotest.(check int) "all packets sent" 25 (List.length !log);
  Alcotest.(check bool) "completion callback" true !done_;
  List.iter
    (fun s ->
      Alcotest.(check int) "src" 1 s.s_src;
      Alcotest.(check int) "flow id" 9 s.s_flow;
      Alcotest.(check int) "size" 1000 s.s_size)
    !log;
  (* Constant 100ns gaps: packets at 0, 100, 200, ... *)
  let times = List.rev_map (fun s -> s.s_at) !log in
  List.iteri (fun i t -> Alcotest.(check int) "pacing" (i * 100) t) times

let test_poisson_stream_rate () =
  let engine = Engine.create () in
  let rng = Rng.create 2 in
  let log = ref [] in
  Traffic.poisson_stream ~engine ~rng ~send:(recording_sink engine log) ~src:0 ~dst:1
    ~flow_id:1 ~rate_pps:100_000. ~pkt_size:64 ~until:(Time.ms 100);
  Engine.run engine;
  let n = List.length !log in
  (* 100k pps for 100 ms -> ~10k packets (Poisson, generous bounds). *)
  Alcotest.(check bool) "rate approximately honored" true (n > 9_000 && n < 11_000)

let test_every_periodic () =
  let engine = Engine.create () in
  let count = ref 0 in
  Traffic.every ~engine ~period:(Time.ms 10) ~until:(Time.ms 95) (fun () -> incr count);
  Engine.run engine;
  Alcotest.(check int) "9 ticks in 95ms at 10ms" 9 !count

let run_app app_runner =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let log = ref [] in
  let fids = Traffic.flow_ids () in
  app_runner ~engine ~rng ~send:(recording_sink engine log) ~fids;
  Engine.run engine;
  List.rev !log

let hosts = [ 0; 1; 2; 3; 4; 5 ]

let test_hadoop_all_to_all () =
  let log =
    run_app (fun ~engine ~rng ~send ~fids ->
        Apps.Hadoop.run ~engine ~rng ~send ~fids ~until:(Time.ms 300)
          (Apps.Hadoop.default_params ~mappers:hosts ~reducers:hosts))
  in
  Alcotest.(check bool) "substantial traffic" true (List.length log > 1_000);
  (* Every mapper participates, no self-flows. *)
  List.iter (fun s -> Alcotest.(check bool) "no self traffic" true (s.s_src <> s.s_dst)) log;
  let senders = List.sort_uniq compare (List.map (fun s -> s.s_src) log) in
  Alcotest.(check (list int)) "all mappers sent" hosts senders

let test_hadoop_is_bursty () =
  let log =
    run_app (fun ~engine ~rng ~send ~fids ->
        Apps.Hadoop.run ~engine ~rng ~send ~fids ~until:(Time.sec 1)
          (Apps.Hadoop.default_params ~mappers:hosts ~reducers:hosts))
  in
  (* Bin sends into 5 ms bins: a bursty workload must have both loaded
     and near-empty bins. *)
  let bins = Array.make 201 0 in
  List.iter
    (fun s ->
      let b = s.s_at / Time.ms 5 in
      if b >= 0 && b < 201 then bins.(b) <- bins.(b) + 1)
    log;
  let busy = Array.fold_left (fun acc b -> if b > 50 then acc + 1 else acc) 0 bins in
  let idle = Array.fold_left (fun acc b -> if b < 5 then acc + 1 else acc) 0 bins in
  Alcotest.(check bool) "has busy bins" true (busy > 5);
  Alcotest.(check bool) "has idle bins" true (idle > 5)

let test_graphx_master_silent () =
  let log =
    run_app (fun ~engine ~rng ~send ~fids ->
        Apps.Graphx.run ~engine ~rng ~send ~fids ~until:(Time.ms 400)
          (Apps.Graphx.default_params ~workers:hosts ~master:0))
  in
  Alcotest.(check bool) "traffic exists" true (List.length log > 100);
  List.iter
    (fun s ->
      Alcotest.(check bool) "master neither sends nor receives" true
        (s.s_src <> 0 && s.s_dst <> 0))
    log

let test_graphx_synchronized_supersteps () =
  let log =
    run_app (fun ~engine ~rng ~send ~fids ->
        Apps.Graphx.run ~engine ~rng ~send ~fids ~until:(Time.ms 400)
          (Apps.Graphx.default_params ~workers:hosts ~master:0))
  in
  (* All five workers' first packets should land within ~1 ms of each
     other (superstep synchrony). *)
  let first_by_src = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem first_by_src s.s_src) then
        Hashtbl.add first_by_src s.s_src s.s_at)
    log;
  let firsts = Hashtbl.fold (fun _ t acc -> t :: acc) first_by_src [] in
  let lo = List.fold_left Stdlib.min (List.hd firsts) firsts in
  let hi = List.fold_left Stdlib.max (List.hd firsts) firsts in
  Alcotest.(check int) "5 workers" 5 (List.length firsts);
  (* Bursts are staggered within the first quarter of a 60 ms superstep. *)
  Alcotest.(check bool) "synchronized start" true (hi - lo < Time.ms 20)

let test_memcache_fan_out () =
  let log =
    run_app (fun ~engine ~rng ~send ~fids ->
        Apps.Memcache.run ~engine ~rng ~send ~fids ~until:(Time.ms 100)
          (Apps.Memcache.default_params ~clients:[ 0 ] ~servers:[ 1; 2; 3; 4; 5 ]))
  in
  let requests = List.filter (fun s -> s.s_src = 0) log in
  let responses = List.filter (fun s -> s.s_dst = 0) log in
  Alcotest.(check bool) "requests go to every server" true
    (List.sort_uniq compare (List.map (fun s -> s.s_dst) requests) = [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "responses incast to the client" true
    (List.length responses > List.length requests);
  List.iter
    (fun s -> Alcotest.(check int) "request size" 100 s.s_size)
    requests

let test_memcache_response_after_service_time () =
  let log =
    run_app (fun ~engine ~rng ~send ~fids ->
        Apps.Memcache.run ~engine ~rng ~send ~fids ~until:(Time.ms 10)
          (Apps.Memcache.default_params ~clients:[ 0 ] ~servers:[ 1 ]))
  in
  let req = List.find (fun s -> s.s_src = 0) log in
  let resp = List.find (fun s -> s.s_dst = 0) log in
  Alcotest.(check bool) "response after request" true (resp.s_at > req.s_at)

let test_uniform_covers_all_pairs () =
  let log =
    run_app (fun ~engine ~rng ~send ~fids ->
        Apps.Uniform.run ~engine ~rng ~send ~fids ~hosts:[ 0; 1; 2 ]
          ~rate_pps:50_000. ~pkt_size:100 ~until:(Time.ms 20))
  in
  let pairs = List.sort_uniq compare (List.map (fun s -> (s.s_src, s.s_dst)) log) in
  Alcotest.(check int) "all 6 ordered pairs" 6 (List.length pairs)

let () =
  Alcotest.run "workload"
    [
      ( "traffic",
        [
          Alcotest.test_case "flow ids" `Quick test_flow_ids_unique;
          Alcotest.test_case "send_flow" `Quick test_send_flow_count_and_order;
          Alcotest.test_case "poisson rate" `Quick test_poisson_stream_rate;
          Alcotest.test_case "every" `Quick test_every_periodic;
        ] );
      ( "hadoop",
        [
          Alcotest.test_case "all-to-all shuffle" `Quick test_hadoop_all_to_all;
          Alcotest.test_case "bursty" `Quick test_hadoop_is_bursty;
        ] );
      ( "graphx",
        [
          Alcotest.test_case "master silent" `Quick test_graphx_master_silent;
          Alcotest.test_case "synchronized supersteps" `Quick
            test_graphx_synchronized_supersteps;
        ] );
      ( "memcache",
        [
          Alcotest.test_case "fan-out" `Quick test_memcache_fan_out;
          Alcotest.test_case "service time" `Quick test_memcache_response_after_service_time;
        ] );
      ( "uniform",
        [ Alcotest.test_case "covers pairs" `Quick test_uniform_covers_all_pairs ] );
    ]

test/test_sim.ml: Alcotest Array Dist Engine Float Gen Heap List QCheck QCheck_alcotest Rng Speedlight_sim Time

test/test_topology.ml: Alcotest Array List QCheck QCheck_alcotest Rng Routing Speedlight_sim Speedlight_topology Time Topology

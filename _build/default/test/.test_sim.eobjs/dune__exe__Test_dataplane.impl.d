test/test_dataplane.ml: Alcotest Counter Fifo_queue Float Gen List Packet QCheck QCheck_alcotest Register Snapshot_header Speedlight_dataplane Speedlight_sim Time Unit_id

test/test_resources.ml: Alcotest Buffer Format List Printf Resource_model Speedlight_resources String

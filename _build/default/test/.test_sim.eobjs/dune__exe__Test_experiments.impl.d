test/test_experiments.ml: Ablations Alcotest Array Cdf Fig10 Fig11 Fig13 Fig9 Format List Scale Speedlight_experiments Speedlight_stats Table1

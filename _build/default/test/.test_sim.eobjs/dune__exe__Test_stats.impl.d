test/test_stats.ml: Alcotest Array Cdf Descriptive Ewma Float Gen List QCheck QCheck_alcotest Ranking Spearman Special Speedlight_sim Speedlight_stats

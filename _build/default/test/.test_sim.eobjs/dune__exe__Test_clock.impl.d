test/test_clock.ml: Alcotest Clock Engine Float List Ptp QCheck QCheck_alcotest Rng Speedlight_clock Speedlight_sim Time

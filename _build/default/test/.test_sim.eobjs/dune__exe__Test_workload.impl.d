test/test_workload.ml: Alcotest Apps Array Dist Engine Hashtbl List Rng Speedlight_sim Speedlight_workload Stdlib Time Traffic

(* Tests for drifting clocks and the PTP synchronization model. *)

open Speedlight_sim
open Speedlight_clock

let check_float eps = Alcotest.(check (float eps))

let test_clock_perfect () =
  let c = Clock.create () in
  Alcotest.(check int) "no error" (Time.ms 5) (Clock.read c ~true_time:(Time.ms 5));
  check_float 1e-9 "zero error" 0. (Clock.error_at c ~true_time:(Time.ms 5))

let test_clock_offset () =
  let c = Clock.create ~offset_ns:1_000. () in
  Alcotest.(check int) "reads fast" (Time.us 1 + Time.ms 1)
    (Clock.read c ~true_time:(Time.ms 1))

let test_clock_drift () =
  let c = Clock.create ~drift_ppm:10. () in
  (* After 1 s of true time, a 10 ppm clock is 10 us fast. *)
  check_float 1e-3 "drift accumulates" 10_000. (Clock.error_at c ~true_time:(Time.sec 1))

let test_clock_inverse_roundtrip =
  QCheck.Test.make ~name:"true_time_of_local inverts read" ~count:300
    QCheck.(
      triple
        (float_range (-10_000.) 10_000.)
        (float_range (-50.) 50.)
        (int_range 0 1_000_000_000))
    (fun (offset_ns, drift_ppm, t) ->
      let c = Clock.create ~offset_ns ~drift_ppm () in
      let local = Clock.read c ~true_time:t in
      let back = Clock.true_time_of_local c ~local in
      abs (back - t) <= 1 (* rounding *))

let test_clock_correction () =
  let c = Clock.create ~offset_ns:5_000. ~drift_ppm:100. () in
  Clock.apply_correction c ~true_time:(Time.ms 10) ~residual_ns:50.;
  check_float 1e-6 "residual replaces offset" 50.
    (Clock.error_at c ~true_time:(Time.ms 10));
  (* Drift keeps accumulating from the sync point. *)
  check_float 1e-3 "drift from sync point" (50. +. 100.)
    (Clock.error_at c ~true_time:(Time.ms 10 + Time.ms 1))

let test_ptp_bounds_error () =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let ptp = Ptp.create ~rng engine in
  let clocks = List.init 8 (fun _ -> Clock.create ~offset_ns:1e6 ()) in
  List.iter (Ptp.attach ptp) clocks;
  (* attach applies an immediate correction: the 1 ms initial offset must
     be gone. *)
  List.iter
    (fun c ->
      let err = Clock.error_at c ~true_time:(Engine.now engine) in
      Alcotest.(check bool) "attached clock error < 5us" true (Float.abs err < 5_000.))
    clocks;
  (* Run several sync intervals: error stays bounded despite drift. *)
  Engine.run_until engine (Time.sec 2);
  List.iter
    (fun c ->
      let err = Clock.error_at c ~true_time:(Engine.now engine) in
      Alcotest.(check bool) "error bounded after 2s" true (Float.abs err < 10_000.))
    clocks

let test_ptp_initiation_delay_nonneg () =
  let engine = Engine.create () in
  let rng = Rng.create 4 in
  let ptp = Ptp.create ~rng engine in
  for _ = 1 to 200 do
    Alcotest.(check bool) "delay >= 0" true (Ptp.initiation_delay ptp ~rng >= 0)
  done

let test_ptp_sample_error_distribution () =
  (* The calibrated profile should produce per-unit initiation errors of a
     few microseconds on average (jitter mean 5us + latency mean 2us). *)
  let rng = Rng.create 5 in
  let profile = Ptp.default_profile in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Ptp.sample_initiation_error profile ~rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean in [5us, 9us]" true (mean > 5_000. && mean < 9_000.)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "clock"
    [
      ( "clock",
        [
          Alcotest.test_case "perfect" `Quick test_clock_perfect;
          Alcotest.test_case "offset" `Quick test_clock_offset;
          Alcotest.test_case "drift" `Quick test_clock_drift;
          Alcotest.test_case "correction" `Quick test_clock_correction;
          q test_clock_inverse_roundtrip;
        ] );
      ( "ptp",
        [
          Alcotest.test_case "bounds error" `Quick test_ptp_bounds_error;
          Alcotest.test_case "initiation delay nonneg" `Quick
            test_ptp_initiation_delay_nonneg;
          Alcotest.test_case "initiation error calibration" `Quick
            test_ptp_sample_error_distribution;
        ] );
    ]

(* Tests for the Table-1 resource model: the model must reproduce every
   number the paper publishes, scale sensibly, and respect the paper's
   "<25% of any chip resource" claim. *)

open Speedlight_resources

let usage64 v = Resource_model.usage v ~ports:64

let test_table1_computational_anchors () =
  let check v (sl, sf) =
    let u = usage64 v in
    Alcotest.(check int) "stateless ALUs" sl u.Resource_model.stateless_alus;
    Alcotest.(check int) "stateful ALUs" sf u.Resource_model.stateful_alus
  in
  check Resource_model.Packet_count (17, 9);
  check Resource_model.Wrap_around (19, 9);
  check Resource_model.Channel_state (24, 11)

let test_table1_control_flow_anchors () =
  let check v (tables, gws, stages) =
    let u = usage64 v in
    Alcotest.(check int) "logical tables" tables u.Resource_model.logical_table_ids;
    Alcotest.(check int) "gateways" gws u.Resource_model.gateways;
    Alcotest.(check int) "stages" stages u.Resource_model.stages
  in
  check Resource_model.Packet_count (27, 15, 10);
  check Resource_model.Wrap_around (35, 19, 10);
  check Resource_model.Channel_state (37, 19, 12)

let test_table1_memory_anchors () =
  let check v (sram, tcam) =
    let u = usage64 v in
    Alcotest.(check (float 0.5)) "SRAM" sram u.Resource_model.sram_kb;
    Alcotest.(check (float 0.5)) "TCAM" tcam u.Resource_model.tcam_kb
  in
  check Resource_model.Packet_count (606., 42.);
  check Resource_model.Wrap_around (671., 59.);
  check Resource_model.Channel_state (770., 244.)

let test_section71_14_port_anchors () =
  (* §7.1: "A configuration with wraparound and channel state for 14 port
     snapshots ... requires 638 KB of SRAM and 90 KB of TCAM." *)
  let u = Resource_model.usage Resource_model.Channel_state ~ports:14 in
  Alcotest.(check (float 0.5)) "SRAM @14" 638. u.Resource_model.sram_kb;
  Alcotest.(check (float 0.5)) "TCAM @14" 90. u.Resource_model.tcam_kb

let test_memory_monotone_in_ports () =
  List.iter
    (fun v ->
      let prev = ref 0. in
      for p = 1 to 64 do
        let u = Resource_model.usage v ~ports:p in
        Alcotest.(check bool) "SRAM nondecreasing" true (u.Resource_model.sram_kb >= !prev);
        prev := u.Resource_model.sram_kb
      done)
    Resource_model.all_variants

let test_variants_ordered_by_features () =
  (* More features can only cost more, for every resource. *)
  let pc = usage64 Resource_model.Packet_count in
  let wa = usage64 Resource_model.Wrap_around in
  let cs = usage64 Resource_model.Channel_state in
  let le a b =
    a.Resource_model.stateless_alus <= b.Resource_model.stateless_alus
    && a.Resource_model.stateful_alus <= b.Resource_model.stateful_alus
    && a.Resource_model.logical_table_ids <= b.Resource_model.logical_table_ids
    && a.Resource_model.gateways <= b.Resource_model.gateways
    && a.Resource_model.stages <= b.Resource_model.stages
    && a.Resource_model.sram_kb <= b.Resource_model.sram_kb
    && a.Resource_model.tcam_kb <= b.Resource_model.tcam_kb
  in
  Alcotest.(check bool) "pkt <= wrap" true (le pc wa);
  Alcotest.(check bool) "wrap <= chnl" true (le wa cs)

let test_under_25_percent () =
  List.iter
    (fun v ->
      let u = Resource_model.max_utilization v ~ports:64 in
      Alcotest.(check bool)
        (Printf.sprintf "%s under 25%%" (Resource_model.variant_name v))
        true (u < 0.25))
    Resource_model.all_variants

let test_ports_out_of_range () =
  Alcotest.(check bool) "0 ports rejected" true
    (try
       ignore (Resource_model.usage Resource_model.Packet_count ~ports:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "65 ports rejected" true
    (try
       ignore (Resource_model.usage Resource_model.Packet_count ~ports:65);
       false
     with Invalid_argument _ -> true)

(* tiny substring helper to avoid extra deps *)
let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_pp_table_renders () =
  let b = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer b in
  Resource_model.pp_table fmt ~ports:64;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents b in
  Alcotest.(check bool) "contains SRAM row" true (contains out "SRAM");
  Alcotest.(check bool) "contains all variants" true
    (contains out "Packet Count" && contains out "+ Wrap Around"
    && contains out "+ Chnl. State")

let () =
  Alcotest.run "resources"
    [
      ( "table1",
        [
          Alcotest.test_case "computational anchors" `Quick
            test_table1_computational_anchors;
          Alcotest.test_case "control-flow anchors" `Quick
            test_table1_control_flow_anchors;
          Alcotest.test_case "memory anchors" `Quick test_table1_memory_anchors;
          Alcotest.test_case "14-port anchors" `Quick test_section71_14_port_anchors;
        ] );
      ( "model",
        [
          Alcotest.test_case "memory monotone" `Quick test_memory_monotone_in_ports;
          Alcotest.test_case "feature ordering" `Quick test_variants_ordered_by_features;
          Alcotest.test_case "under 25%" `Quick test_under_25_percent;
          Alcotest.test_case "port range" `Quick test_ports_out_of_range;
          Alcotest.test_case "table renders" `Quick test_pp_table_renders;
        ] );
    ]

(* Partial deployment (§10): only the leaf (ToR) switches are
   snapshot-enabled; the spines forward snapshot headers untouched. The
   snapshot then covers the participating devices and the logical channels
   between them — leaf-to-leaf through the legacy spines — and causal
   consistency is preserved.

   Run with: dune exec examples/partial_deployment.exe *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload

let () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    {
      (Config.default |> Config.with_variant Snapshot_unit.variant_wraparound) with
      (* The spines run no snapshot logic at all. *)
      Config.snapshot_disabled_switches = ls.Topology.spine_switches;
    }
  in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  Apps.Uniform.run ~engine ~rng:(Net.fresh_rng net)
    ~send:(fun ~src ~dst ~size ~flow_id -> Net.send net ~flow_id ~src ~dst ~size ())
    ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server)
    ~rate_pps:5_000. ~pkt_size:1200 ~until:(Time.ms 300);

  let sid = ref 0 in
  ignore (Engine.schedule engine ~at:(Time.ms 60) (fun () -> sid := Net.take_snapshot net ()));
  Engine.run_until engine (Time.ms 400);

  (match Net.result net ~sid:!sid with
  | Some snap ->
      Printf.printf
        "snapshot %d with spines NOT snapshot-enabled: complete=%b consistent=%b\n"
        snap.Observer.sid snap.Observer.complete snap.Observer.consistent;
      Printf.printf "reports: %d (leaf units only; a full deployment reports 28)\n\n"
        (Unit_id.Map.cardinal snap.Observer.reports);
      Unit_id.Map.iter
        (fun uid (r : Report.t) ->
          Printf.printf "  %-10s count=%.0f\n" (Unit_id.to_string uid)
            (Option.value ~default:nan r.Report.value))
        snap.Observer.reports
  | None -> print_endline "snapshot missing");

  (* The proof that markers traverse the legacy spines: the leaves'
     uplink ingress units advanced their snapshot IDs even though their
     physical neighbors (the spines) never stamped a packet — the IDs were
     piggybacked end-to-end from the other leaf. *)
  print_endline "\nsnapshot IDs piggybacked across the legacy spines:";
  List.iter
    (fun leaf ->
      List.iter
        (fun p ->
          let u = Net.unit_of net (Unit_id.ingress ~switch:leaf ~port:p) in
          Printf.printf "  leaf s%d uplink p%d ingress: snapshot id %d\n" leaf p
            (Snapshot_unit.current_ghost_sid u))
        (List.assoc leaf ls.Topology.uplink_ports))
    ls.Topology.leaf_switches;
  Printf.printf "  (spines forwarded %d packets without touching a header)\n"
    (List.fold_left
       (fun acc s -> acc + Switch.total_forwarded (Net.switch net s))
       0 ls.Topology.spine_switches)

examples/flow_tracking.mli:

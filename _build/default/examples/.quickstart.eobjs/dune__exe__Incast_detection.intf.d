examples/incast_detection.mli:

examples/quickstart.mli:

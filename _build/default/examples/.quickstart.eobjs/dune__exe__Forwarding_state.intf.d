examples/forwarding_state.mli:

(* Tracking one (elephant) flow consistently across the whole network.

   The snapshot primitive works for any line-rate state (§3); here each
   unit runs a count-min sketch over all flows and snapshots the point
   estimate of one tracked flow. The continuous Monitor API takes a
   snapshot every 10 ms, giving a live, causally consistent view of where
   the flow's packets have been — with channel state, the per-wire
   conservation law holds for the tracked flow alone.

   Run with: dune exec examples/flow_tracking.exe *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload

let tracked_flow = 424_242

let () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg = Config.default |> Config.with_counter (Config.Sketch_flow tracked_flow) in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  let h = ls.Topology.host_of_server in

  (* The elephant: h0 -> h5 (cross-leaf), plus enough background noise
     that the sketch actually has something to disambiguate. *)
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  Traffic.send_flow ~engine ~rng ~send ~src:h.(0) ~dst:h.(5) ~flow_id:tracked_flow
    ~n_pkts:3_000 ~pkt_size:1500 ~gap:(Dist.exponential ~mean:60_000.) ();
  Apps.Uniform.run ~engine ~rng ~send ~fids ~hosts:(Array.to_list h)
    ~rate_pps:3_000. ~pkt_size:800 ~until:(Time.ms 200);

  ignore (Engine.schedule engine ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net));

  (* Live monitoring: snapshot every 10 ms, print the flow's footprint as
     each snapshot completes. *)
  let print_footprint (snap : Observer.snapshot) =
    let at_unit uid =
      match Unit_id.Map.find_opt uid snap.Observer.reports with
      | Some r -> Option.value ~default:nan (Report.consistent_value r)
      | None -> nan
    in
    (* The elephant enters at leaf0's host port for h0 and exits at leaf1's
       host port for h5; count it at both edges plus whatever is buffered
       in between. *)
    let src_sw, src_port = Topology.host_attachment ls.Topology.topo ~host:h.(0) in
    let dst_sw, dst_port = Topology.host_attachment ls.Topology.topo ~host:h.(5) in
    let entered = at_unit (Unit_id.ingress ~switch:src_sw ~port:src_port) in
    let exited = at_unit (Unit_id.egress ~switch:dst_sw ~port:dst_port) in
    Printf.printf
      "t=%-10s snapshot %-3d  entered=%-6.0f exited=%-6.0f in transit=%.0f\n"
      (Time.to_string (Net.now net))
      snap.Observer.sid entered exited (entered -. exited)
  in
  let mon =
    Monitor.start net ~period:(Time.ms 10) ~history:32 ~on_snapshot:print_footprint ()
  in
  Engine.run_until engine (Time.ms 220);
  Monitor.stop mon;
  Engine.run_until engine (Time.ms 300);
  Printf.printf
    "\n%d snapshots taken, %d skipped for pacing; every line above is a causally\n\
     consistent cut: 'in transit' is packets genuinely inside the network, not an\n\
     artifact of reading two counters at different times.\n"
    (Monitor.taken mon) (Monitor.skipped mon)

(* "How much of my network is concurrently loaded? Is application traffic
   synchronized?" (§1, §2.2 Q3) — detecting TCP-incast-style behavior.

   A memcache client fans multi-get requests out to five servers; the
   responses incast back through the client's access port. A synchronized
   snapshot of *queue depths* shows the concurrent buildup across the
   network at one instant — while asynchronous polling reads each queue at
   a different time and can neither confirm nor bound the synchrony.

   Run with: dune exec examples/incast_detection.exe *)

open Speedlight_sim
open Speedlight_stats
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload

let () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Queue_depth
  in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  (* Two clients, one per leaf, issuing multi-gets on a *shared* schedule
     (think: the same upstream request fanning out) — synchronized
     application behavior. Responses (30x1500 B from 4 servers each)
     incast into both access ports at once. *)
  let client_a = ls.Topology.host_of_server.(0) in
  let client_b = ls.Topology.host_of_server.(3) in
  let clients = [ client_a; client_b ] in
  let servers = List.filter (fun h -> not (List.mem h clients)) hosts in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  let multiget client =
    List.iter
      (fun server ->
        send ~src:client ~dst:server ~size:100 ~flow_id:(Traffic.next_flow fids);
        let service =
          Time.of_ns_float (Float.max 1. (Dist.sample (Dist.normal_pos ~mu:100_000. ~sigma:10_000.) rng))
        in
        ignore
          (Engine.schedule_after engine ~delay:service (fun () ->
               Traffic.send_flow ~engine ~rng ~send ~src:server ~dst:client
                 ~flow_id:(Traffic.next_flow fids) ~n_pkts:30 ~pkt_size:1500
                 ~gap:(Dist.exponential ~mean:15_000.) ())))
      servers
  in
  let rec request_loop () =
    if Engine.now engine < Time.ms 500 then begin
      List.iter multiget clients;
      let delay = Time.of_ns_float (Float.max 1. (Dist.sample (Dist.exponential ~mean:4_000_000.) rng)) in
      ignore (Engine.schedule_after engine ~delay request_loop)
    end
  in
  request_loop ();

  (* Snapshot queue depths every 2 ms. *)
  let sids = ref [] in
  for i = 0 to 149 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 50) (i * Time.ms 2))
         (fun () -> sids := Net.take_snapshot net () :: !sids))
  done;
  Engine.run_until engine (Time.ms 600);

  (* For each snapshot: total queued packets and the number of ports with
     non-empty queues — the network-wide concurrency picture. *)
  let concurrency =
    List.filter_map
      (fun sid ->
        match Net.result net ~sid with
        | Some snap when snap.Observer.complete ->
            let total = ref 0. and busy = ref 0 in
            Unit_id.Map.iter
              (fun (uid : Unit_id.t) (r : Report.t) ->
                if uid.Unit_id.dir = Unit_id.Egress then
                  match r.Report.value with
                  | Some v ->
                      total := !total +. v;
                      if v > 0. then incr busy
                  | None -> ())
              snap.Observer.reports;
            Some (!total, !busy)
        | Some _ | None -> None)
      !sids
  in
  let totals = Array.of_list (List.map fst concurrency) in
  let busies = Array.of_list (List.map (fun (_, b) -> float_of_int b) concurrency) in
  Printf.printf "%d queue-depth snapshots taken during a memcache incast workload\n\n"
    (Array.length totals);
  Printf.printf "network-wide queued packets per snapshot: median %.0f, p90 %.0f, max %.0f\n"
    (Descriptive.median totals)
    (Descriptive.percentile totals 90.)
    (Descriptive.max totals);
  Printf.printf "ports queueing simultaneously:            median %.0f, p90 %.0f, max %.0f\n\n"
    (Descriptive.median busies)
    (Descriptive.percentile busies 90.)
    (Descriptive.max busies);
  (* Incast signature: when client A's access port queue is deep, the
     *same snapshot* shows other ports (notably client B's, fed by the
     shared request schedule) also loaded — the buildup is synchronized,
     not independent. *)
  let client_sw, client_port = Topology.host_attachment ls.Topology.topo ~host:client_a in
  let during_incast, elsewhere_when_incast =
    List.fold_left
      (fun (n, acc) sid ->
        match Net.result net ~sid with
        | Some snap when snap.Observer.complete -> (
            let client_q =
              match
                Unit_id.Map.find_opt
                  (Unit_id.egress ~switch:client_sw ~port:client_port)
                  snap.Observer.reports
              with
              | Some r -> Option.value ~default:0. r.Report.value
              | None -> 0.
            in
            if client_q >= 5. then begin
              let others = ref 0 in
              Unit_id.Map.iter
                (fun (uid : Unit_id.t) (r : Report.t) ->
                  if
                    uid.Unit_id.dir = Unit_id.Egress
                    && not (uid.Unit_id.switch = client_sw && uid.Unit_id.port = client_port)
                  then
                    match r.Report.value with
                    | Some v when v > 0. -> incr others
                    | _ -> ())
                snap.Observer.reports;
              (n + 1, acc + !others)
            end
            else (n, acc))
        | _ -> (n, acc))
      (0, 0) !sids
  in
  if during_incast > 0 then
    Printf.printf
      "incast detected: in the %d snapshots where the client port queued >=5 packets,\n\
       an average of %.1f other ports were queueing at the same instant --\n\
       the load is synchronized (responses arriving together), not coincidental.\n"
      during_incast
      (float_of_int elsewhere_when_incast /. float_of_int during_incast)
  else print_endline "no incast episodes captured; increase the workload intensity"

(* "What is the global forwarding state?" (§2.2 Q4, §10 "Measuring
   Forwarding State").

   The control plane rolls out a new FIB version across the switches, one
   switch every few milliseconds. Each data plane tags its unit state with
   the version of the rules that forwarded the last packet. A consistent
   snapshot can only ever show causally possible version combinations; an
   asynchronous poll can assemble a "global state" that never existed —
   exactly the kind of phantom state that makes loop/blackhole diagnosis
   unreliable.

   The snapshot side of the comparison is one canned query,
   [Query.Canned.causal_violations]; polling has no snapshot rounds to
   query and is judged inline as before.

   Run with: dune exec examples/forwarding_state.exe *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_query

(* The rollout updates switches in a fixed order; a version vector is
   causally possible iff it is monotone w.r.t. that order: switch k can
   only be at version v if every switch updated before it is at >= v. *)
let possible rollout_order versions =
  let rec go prev = function
    | [] -> true
    | s :: rest ->
        let v = versions s in
        v <= prev && go v rest
  in
  (* Versions along the rollout order must be non-increasing: later
     switches in the order got the update later. *)
  go max_int rollout_order

(* Observe each switch through one designated unit (its port-0 ingress),
   the way an operator would read one representative forwarding-state
   register per device. *)
let probe_unit s = Unit_id.ingress ~switch:s ~port:0

let () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Fib_version
  in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  Apps.Uniform.run ~engine ~rng:(Net.fresh_rng net)
    ~send:(fun ~src ~dst ~size ~flow_id -> Net.send net ~flow_id ~src ~dst ~size ())
    ~fids:(Traffic.flow_ids ()) ~hosts ~rate_pps:8_000. ~pkt_size:1000
    ~until:(Time.ms 800);

  (* Roll out versions 1..30, updating switches in order 0,1,2,3 about
     1.2 ms apart (inside a polling sweep's ~2.6 ms span), a new version
     every 10 ms. *)
  let rollout_order = [ 0; 1; 2; 3 ] in
  for v = 1 to 30 do
    List.iteri
      (fun i s ->
        ignore
          (Engine.schedule engine
             ~at:(Time.add (Time.ms (10 * v)) (i * Time.us 1_200))
             (fun () -> Switch.set_fib_version (Net.switch net s) v)))
      rollout_order
  done;

  (* Snapshot the forwarding-state tags every 2 ms during the rollout;
     interleave polling sweeps for comparison. *)
  let rng = Net.fresh_rng net in
  let sids = ref [] and polls = ref [] in
  for i = 0 to 149 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 9) (i * Time.ms 2))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error e ->
               prerr_endline ("snapshot refused: " ^ Observer.error_to_string e);
               exit 1));
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 10) (i * Time.ms 2))
         (fun () ->
           Polling.poll_round net ~rng ~on_done:(fun r -> polls := r :: !polls) ()))
  done;
  Engine.run_until engine (Time.ms 900);

  (* Judge each observed global version vector. *)
  let snap_bad, snap_n =
    Query.Canned.causal_violations ~rollout_order ~probe:probe_unit
      (Query.of_net net ~sids:(List.rev !sids))
  in
  let poll_bad = ref 0 and poll_n = ref 0 in
  List.iter
    (fun (r : Polling.round) ->
      incr poll_n;
      let version_of s =
        List.fold_left
          (fun acc (smp : Polling.sample) ->
            if Unit_id.equal smp.Polling.unit_id (probe_unit s) then
              int_of_float smp.Polling.value
            else acc)
          0 r.Polling.samples
      in
      if not (possible rollout_order version_of) then incr poll_bad)
    !polls;
  Printf.printf
    "FIB rollout observed by %d snapshots and %d polling sweeps\n\n" snap_n !poll_n;
  Printf.printf
    "causally IMPOSSIBLE global forwarding states observed:\n\
    \  synchronized snapshots: %d of %d\n\
    \  asynchronous polling:   %d of %d\n\n"
    snap_bad snap_n !poll_bad !poll_n;
  print_endline
    (if snap_bad = 0 && !poll_bad > 0 then
       "snapshots only ever show states the network could actually have been in;\n\
        polling fabricates phantom states (the paper's SS2.2 Q4: \"otherwise we\n\
        can observe states that are impossible\")."
     else "unexpected outcome - tune the rollout timing")

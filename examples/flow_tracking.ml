(* Tracking one (elephant) flow consistently across the whole network.

   The snapshot primitive works for any line-rate state (§3); here each
   unit runs a count-min sketch over all flows and snapshots the point
   estimate of one tracked flow. The continuous Monitor API takes a
   snapshot every 10 ms; a [Store.Writer] attached to the observer
   streams every completed snapshot into an on-disk archive, and the
   flow's footprint is reconstructed afterwards from the archive alone
   with [Query.Canned.flow_transit] — with channel state, the per-wire
   conservation law holds for the tracked flow alone.

   Run with: dune exec examples/flow_tracking.exe *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_store
open Speedlight_query

let tracked_flow = 424_242

let () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg = Config.default |> Config.with_counter (Config.Sketch_flow tracked_flow) in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  let h = ls.Topology.host_of_server in

  (* The elephant: h0 -> h5 (cross-leaf), plus enough background noise
     that the sketch actually has something to disambiguate. *)
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  Traffic.send_flow ~engine ~rng ~send ~src:h.(0) ~dst:h.(5) ~flow_id:tracked_flow
    ~n_pkts:3_000 ~pkt_size:1500 ~gap:(Dist.exponential ~mean:60_000.) ();
  Apps.Uniform.run ~engine ~rng ~send ~fids ~hosts:(Array.to_list h)
    ~rate_pps:3_000. ~pkt_size:800 ~until:(Time.ms 200);

  ignore (Engine.schedule engine ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net));

  (* Live monitoring into a persistent archive: snapshot every 10 ms,
     stream each completed round to disk as it finishes. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "speedlight-flow-tracking" in
  let writer = Store.Writer.create ~dir () in
  Store.Writer.attach writer net;
  let mon = Monitor.start net ~period:(Time.ms 10) ~history:32 () in
  Engine.run_until engine (Time.ms 220);
  Monitor.stop mon;
  Engine.run_until engine (Time.ms 300);
  Store.Writer.close writer;

  (* Reconstruct the flow's footprint from the archive alone. The
     elephant enters at leaf0's host port for h0 and exits at leaf1's
     host port for h5; count it at both edges plus whatever is buffered
     in between. *)
  let src_sw, src_port = Topology.host_attachment ls.Topology.topo ~host:h.(0) in
  let dst_sw, dst_port = Topology.host_attachment ls.Topology.topo ~host:h.(5) in
  let q = Query.of_reader (Store.Reader.open_archive_exn dir) in
  let transits =
    Query.Canned.flow_transit
      ~entry:(Unit_id.ingress ~switch:src_sw ~port:src_port)
      ~exit_:(Unit_id.egress ~switch:dst_sw ~port:dst_port)
      q
  in
  List.iter
    (fun (t : Query.Canned.transit) ->
      Printf.printf
        "t=%-10s snapshot %-3d  entered=%-6.0f exited=%-6.0f in transit=%.0f\n"
        (Time.to_string t.Query.Canned.t_fire)
        t.Query.Canned.t_sid t.Query.Canned.t_entered t.Query.Canned.t_exited
        (t.Query.Canned.t_entered -. t.Query.Canned.t_exited))
    transits;
  Printf.printf
    "\n%d snapshots taken, %d skipped for pacing; replayed from the archive at %s.\n\
     Every line above is a causally consistent cut: 'in transit' is packets\n\
     genuinely inside the network, not an artifact of reading two counters at\n\
     different times.\n"
    (Monitor.taken mon) (Monitor.skipped mon) dir

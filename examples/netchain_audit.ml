(* Auditing a NetChain replica chain on consistent cuts (DESIGN.md §15).

   Three leaf switches run an in-switch chain-replicated KV store
   (head -> middle -> tail); writes enter at the head and propagate as
   in-band packets. The replication invariant, per key and adjacent
   pair:

     version(upstream) = version(downstream) + writes in flight between

   A consistent cut captures all three register arrays AND the channel
   state between the replicas at one causal instant, so the invariant is
   checkable exactly: a write caught mid-chain shows up in the captured
   channel state and explains the version skew. Register polling cannot
   do this — it either false-positives on every in-flight write or,
   with a tolerance wide enough to hide transit skew, misses real
   faults of the same magnitude.

   The demo runs the chain twice: healthy, then with one silently
   dropped apply at the middle replica (a permanent off-by-one), and
   classifies every (pair, key) cell of every certified cut.

   Run with: dune exec examples/netchain_audit.exe *)

open Speedlight_sim
open Speedlight_topology
open Speedlight_net
open Speedlight_query
module Verify = Speedlight_verify.Verify
module Apps = Speedlight_apps.Apps
module Netchain = Speedlight_apps.Netchain

let keys = 2

let run ~fault =
  let ls = Topology.leaf_spine ~leaves:3 ~spines:2 ~hosts_per_leaf:2 () in
  let replicas = ls.Topology.leaf_switches in
  let cfg =
    Config.default
    |> Config.with_seed 11
    |> Config.with_apps
         { Apps.hh = None; chain = Some { Netchain.replicas; keys } }
  in
  (* Every chain register cell is its own snapshot unit, so the control
     plane has more reports to ship per round; model the batched register
     reads a real deployment would use. *)
  let cfg = { cfg with Config.notify_proc_time = Time.us 25 } in
  let net = Net.create ~cfg ls.Topology.topo in

  (* Background traffic so the fabric channels see packets (idle channels
     are excluded from the cut at 15 ms). *)
  let engine = Net.engine net in
  let t_end = Time.ms 48 in
  let h = ls.Topology.host_of_server in
  Array.iteri
    (fun i src ->
      let dst = h.((i + 2) mod Array.length h) in
      let fid = Net.fresh_flow_id net in
      let rec go at =
        if at <= t_end then
          ignore
            (Engine.schedule engine ~at (fun () ->
                 Net.send net ~flow_id:fid ~src ~dst ~size:500 ();
                 go (Time.add at (Time.us 40))))
      in
      go (Time.ms 1))
    h;

  (* Client writes, one every 4 ms, entering at the chain head. *)
  for i = 0 to 4 do
    Net.chain_write net
      ~at:(Time.ms (20 + (4 * i)))
      ~key:(i mod keys) ~value:(100 + i)
  done;

  (* The fault: the middle replica silently loses its next apply. The
     write lands at head and tail but not in the middle — from 34 ms on,
     every cut shows the middle replica one version behind with no
     in-flight packet to explain it. *)
  (if fault then
     let mid = List.nth replicas 1 in
     Net.schedule_on_switch net ~switch:mid ~at:(Time.ms 34) (fun () ->
         match Net.app_stage net ~switch:mid with
         | Some st -> Option.iter Netchain.skip_next_apply (Apps.Stage.chain st)
         | None -> ()));

  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let auditor = Verify.attach net in
  let sids = ref [] in
  for k = 0 to 7 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 20) (k * Time.ms 3))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error Speedlight_core.Observer.Pacing_full -> ()
           | Error e ->
               invalid_arg (Speedlight_core.Observer.error_to_string e)))
  done;
  Net.run_until net t_end;
  let sids = List.rev !sids in
  let audit = Verify.audit auditor ~sids in
  let q =
    Query.of_net net ~sids |> Query.apply_audit audit |> Query.certified_only
  in
  (Query.Canned.chain_consistency ~replicas ~keys q, List.length sids)

let () =
  List.iter
    (fun (name, fault) ->
      let checks, rounds = run ~fault in
      Printf.printf "%s chain (%d snapshot rounds, %d certified):\n" name
        rounds (List.length checks);
      List.iter
        (fun (c : Query.Canned.chain_check) ->
          Printf.printf
            "  cut %2d: settled %d | in-flight %d | violated %d%s\n"
            c.Query.Canned.k_sid c.Query.Canned.k_consistent
            c.Query.Canned.k_in_flight c.Query.Canned.k_violated
            (match c.Query.Canned.k_worst with
            | Some (up, down, key, v)
              when v = Query.Canned.Violated || v = Query.Canned.In_flight_explained
              ->
                Printf.sprintf "  (worst: pair %d->%d key %d: %s)" up down key
                  (Query.Canned.chain_verdict_name v)
            | _ -> ""))
        checks;
      print_newline ())
    [ ("healthy", false); ("faulty", true) ];
  print_endline
    "Every certified cut of the healthy run is either settled or explained\n\
     by captured channel state; the faulty run shows an unexplained\n\
     version skew on every cut after the dropped apply — the signature\n\
     polling with a calibrated tolerance cannot distinguish from transit."

(* "How much of my network is concurrently loaded? Is application traffic
   synchronized?" (§1, §2.2 Q3) — detecting TCP-incast-style behavior.

   A memcache client fans multi-get requests out to five servers; the
   responses incast back through the client's access port. A synchronized
   snapshot of *queue depths* shows the concurrent buildup across the
   network at one instant — while asynchronous polling reads each queue at
   a different time and can neither confirm nor bound the synchrony.

   The analysis is the query engine's canned concurrency/incast pair:
   [Query.Canned.queue_concurrency] for the network-wide picture and
   [Query.Canned.incast_episodes] for the synchrony signature.

   Run with: dune exec examples/incast_detection.exe *)

open Speedlight_sim
open Speedlight_stats
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_query

let () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Queue_depth
  in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  (* Two clients, one per leaf, issuing multi-gets on a *shared* schedule
     (think: the same upstream request fanning out) — synchronized
     application behavior. Responses (30x1500 B from 4 servers each)
     incast into both access ports at once. *)
  let client_a = ls.Topology.host_of_server.(0) in
  let client_b = ls.Topology.host_of_server.(3) in
  let clients = [ client_a; client_b ] in
  let servers = List.filter (fun h -> not (List.mem h clients)) hosts in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  let multiget client =
    List.iter
      (fun server ->
        send ~src:client ~dst:server ~size:100 ~flow_id:(Traffic.next_flow fids);
        let service =
          Time.of_ns_float (Float.max 1. (Dist.sample (Dist.normal_pos ~mu:100_000. ~sigma:10_000.) rng))
        in
        ignore
          (Engine.schedule_after engine ~delay:service (fun () ->
               Traffic.send_flow ~engine ~rng ~send ~src:server ~dst:client
                 ~flow_id:(Traffic.next_flow fids) ~n_pkts:30 ~pkt_size:1500
                 ~gap:(Dist.exponential ~mean:15_000.) ())))
      servers
  in
  let rec request_loop () =
    if Engine.now engine < Time.ms 500 then begin
      List.iter multiget clients;
      let delay = Time.of_ns_float (Float.max 1. (Dist.sample (Dist.exponential ~mean:4_000_000.) rng)) in
      ignore (Engine.schedule_after engine ~delay request_loop)
    end
  in
  request_loop ();

  (* Snapshot queue depths every 2 ms. *)
  let sids = ref [] in
  for i = 0 to 149 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 50) (i * Time.ms 2))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error e ->
               prerr_endline ("snapshot refused: " ^ Observer.error_to_string e);
               exit 1))
  done;
  Engine.run_until engine (Time.ms 600);

  (* For each snapshot: total queued packets and the number of ports with
     non-empty queues — the network-wide concurrency picture. *)
  let q = Query.of_net net ~sids:(List.rev !sids) in
  let concurrency = Query.Canned.queue_concurrency q in
  let totals =
    Array.of_list (List.map (fun c -> c.Query.Canned.c_total) concurrency)
  in
  let busies =
    Array.of_list
      (List.map (fun c -> float_of_int c.Query.Canned.c_busy) concurrency)
  in
  Printf.printf "%d queue-depth snapshots taken during a memcache incast workload\n\n"
    (Array.length totals);
  Printf.printf "network-wide queued packets per snapshot: median %.0f, p90 %.0f, max %.0f\n"
    (Descriptive.median totals)
    (Descriptive.percentile totals 90.)
    (Descriptive.max totals);
  Printf.printf "ports queueing simultaneously:            median %.0f, p90 %.0f, max %.0f\n\n"
    (Descriptive.median busies)
    (Descriptive.percentile busies 90.)
    (Descriptive.max busies);
  (* Incast signature: when client A's access port queue is deep, the
     *same snapshot* shows other ports (notably client B's, fed by the
     shared request schedule) also loaded — the buildup is synchronized,
     not independent. *)
  let client_sw, client_port = Topology.host_attachment ls.Topology.topo ~host:client_a in
  let episodes =
    Query.Canned.incast_episodes
      ~trigger:(Unit_id.egress ~switch:client_sw ~port:client_port)
      ~threshold:5. q
  in
  match episodes with
  | [] -> print_endline "no incast episodes captured; increase the workload intensity"
  | eps ->
      let others =
        List.fold_left (fun acc e -> acc + e.Query.Canned.i_others) 0 eps
      in
      Printf.printf
        "incast detected: in the %d snapshots where the client port queued >=5 packets,\n\
         an average of %.1f other ports were queueing at the same instant --\n\
         the load is synchronized (responses arriving together), not coincidental.\n"
        (List.length eps)
        (float_of_int others /. float_of_int (List.length eps))

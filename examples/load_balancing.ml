(* "Is my load balancing algorithm taking advantage of all available paths
   evenly?" — the question the paper opens with (§1, §2.2 Q1, §8.3).

   This example runs the Hadoop-style shuffle workload under flow-hash
   ECMP and under flowlet switching, snapshots the EWMA of packet
   interarrival time on every uplink, and compares the instantaneous
   balance the two algorithms achieve — something averaged counters
   cannot show.

   The analysis runs on the snapshot query engine: the finished run is
   lifted into a query with [Query.of_net] and the paper's imbalance
   metric is one call, [Query.Canned.uplink_imbalance].

   Run with: dune exec examples/load_balancing.exe *)

open Speedlight_sim
open Speedlight_stats
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_query

let run_policy policy =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Ewma_interarrival
    |> Config.with_policy policy
  in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  Apps.Hadoop.run ~engine ~rng:(Net.fresh_rng net) ~send:(fun ~src ~dst ~size ~flow_id ->
      Net.send net ~flow_id ~src ~dst ~size ())
    ~fids:(Traffic.flow_ids ()) ~until:(Time.sec 1)
    (Apps.Hadoop.default_params ~mappers:hosts ~reducers:hosts);
  (* 60 snapshots, 15 ms apart. *)
  let sids = ref [] in
  for i = 0 to 59 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 100) (i * Time.ms 15))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error e ->
               prerr_endline ("snapshot refused: " ^ Observer.error_to_string e);
               exit 1))
  done;
  Engine.run_until engine (Time.ms 1200);
  (* Standard deviation of the uplink EWMAs, per snapshot and leaf —
     Fig. 12's metric, one call on the query engine. *)
  Query.Canned.uplink_imbalance ~uplinks:ls.Topology.uplink_ports
    (Query.of_net net ~sids:(List.rev !sids))

let () =
  print_endline "Evaluating load balancing with synchronized snapshots (cf. Fig. 12a)";
  print_endline "metric: stddev of uplink EWMA interarrival, per leaf, per snapshot (us)\n";
  let ecmp = run_policy Routing.Ecmp in
  let flowlet = run_policy (Routing.Flowlet { gap = Time.us 500 }) in
  Cdf.pp_series ~unit_label:"us" Format.std_formatter
    [ ("ECMP", ecmp); ("Flowlet", flowlet) ];
  Printf.printf
    "\nmedian imbalance: ECMP %.1f us vs flowlet %.1f us -- flowlets balance %.1fx better\n"
    (Cdf.median ecmp) (Cdf.median flowlet)
    (Cdf.median ecmp /. Float.max 0.1 (Cdf.median flowlet));
  print_endline
    "(only a contemporaneous view can make this comparison: see Fig. 12 for\n\
     how asynchronous polling distorts it)"

(* Chaos drill: flap a fabric link and crash a control plane in the
   middle of a snapshot campaign, then let the independent cut auditor
   judge every outcome.

   The point of the drill: Speedlight under faults may return snapshots
   late, incomplete, or flagged inconsistent — but never a snapshot that
   claims to be a consistent cut and is not. The auditor re-derives each
   cut from the ground-truth exchange trace and certifies (or refutes)
   every label the observer produced.

   Run with: dune exec examples/chaos_drill.exe *)

open Speedlight_sim
open Speedlight_core
open Speedlight_net
open Speedlight_topology
open Speedlight_workload
open Speedlight_faults
open Speedlight_verify

let () =
  let cfg =
    Config.default
    |> Config.with_counter Config.Packet_count
    |> Config.with_seed 42
  in
  let ls = Topology.leaf_spine () in
  let net = Net.create ~cfg ls.Topology.topo in
  let rng = Net.fresh_rng net in

  (* Line-rate-ish uniform traffic across all six servers. *)
  let t_end = Time.ms 80 in
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  Apps.Uniform.run ~engine:(Net.engine net) ~rng ~send
    ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server)
    ~rate_pps:40_000. ~pkt_size:1500 ~until:t_end;
  Net.schedule_global net ~at:(Time.ms 8) (fun () -> Net.auto_exclude_idle net);

  (* The drill: at 30 ms one leaf uplink goes dark for 6 ms; at 42 ms
     leaf 0's control plane crashes, losing its queued notifications and
     soft state, and restarts 5 ms later with a register re-sync. *)
  let leaf0 =
    match ls.Topology.uplink_ports with
    | (l, _) :: _ -> l
    | _ -> assert false
  in
  let leaf1, up1 =
    match ls.Topology.uplink_ports with
    | _ :: (l, p :: _) :: _ -> (l, p)
    | _ -> assert false
  in
  let plan =
    {
      Faults.seed = 7;
      events =
        [
          { Faults.at = Time.ms 30; action = Faults.Link_down { switch = leaf1; port = up1 } };
          { Faults.at = Time.ms 36; action = Faults.Link_up { switch = leaf1; port = up1 } };
          { Faults.at = Time.ms 42; action = Faults.Cp_crash { switch = leaf0 } };
          { Faults.at = Time.ms 47; action = Faults.Cp_restart { switch = leaf0 } };
        ];
    }
  in
  let auditor = Verify.attach net in
  let faults = Faults.install ~net plan in

  (* One snapshot every 4 ms, straddling both faults. *)
  let sids = ref [] in
  List.iteri
    (fun k () ->
      ignore
        (Engine.schedule (Net.engine net)
           ~at:(Time.add (Time.ms 12) (k * Time.ms 4))
           (fun () ->
             match Net.try_take_snapshot net () with
             | Ok sid -> sids := sid :: !sids
             | Error _ -> ())))
    (List.init 15 (fun _ -> ()));
  Net.run_until net (Time.add t_end (Time.ms 60));
  let sids = List.rev !sids in

  Format.printf "fault plan (%d/%d events fired):@."
    (Faults.fired_count faults)
    (List.length plan.Faults.events);
  List.iter
    (fun (ev, fired) ->
      Format.printf "  %a @@ %.1f ms -> %s@." Faults.pp_action ev.Faults.action
        (float_of_int ev.Faults.at /. 1e6)
        (match fired with
        | Some t -> Printf.sprintf "fired at %.1f ms" (float_of_int t /. 1e6)
        | None -> "never fired"))
    (Faults.firings faults);
  Format.printf "injected drops: %d | notification losses: %d@.@."
    (Net.injected_drops net) (Net.total_notif_drops net);

  Format.printf "audited snapshot outcomes:@.";
  let obs = Net.observer net in
  List.iter
    (fun sid ->
      let label =
        match Net.result net ~sid with
        | Some s when s.Observer.complete && s.Observer.consistent ->
            "consistent"
        | Some s when s.Observer.complete -> "inconsistent"
        | Some _ | None -> "incomplete"
      in
      let stale =
        match Observer.staleness obs ~sid with
        | Some t -> Printf.sprintf "%5.0f us" (Time.to_us t)
        | None -> "      -"
      in
      Format.printf "  sid %2d  %-12s staleness %s  audit: %a@." sid label
        stale Verify.pp_verdict
        (Verify.audit_one auditor ~sid))
    sids;

  let a = Verify.audit auditor ~sids in
  Format.printf "@.%a@." Verify.pp_audit a;
  if Verify.ok a then
    Format.printf "no snapshot lied about being a consistent cut.@."
  else begin
    Format.printf "AUDIT FAILURE: a consistent label was wrong.@.";
    exit 1
  end

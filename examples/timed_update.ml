(* Timed, consistent updates closed-loop on snapshots (DESIGN.md §12).

   An ECMP re-weight swap on the paper testbed — leaf 0 carries its
   cross-leaf aggregate via spine 0 and leaf 1 via spine 1, and the
   update swaps the two — executed twice: untimed ([Immediate], each
   switch applies when its flow-mod is delivered and installed) and
   timed ([Timed], Time4-style: flow-mods installed ahead of time and
   armed against each switch's local PTP clock). Each run is bracketed
   with snapshot rounds carrying FIB-version counters, and the update
   auditor walks the snapshotted version vectors through the transition
   detectors to certify the transition [Atomic] — or catch it in flight.

   Run with: dune exec examples/timed_update.exe *)

open Speedlight_sim
open Speedlight_core
open Speedlight_dataplane
open Speedlight_topology
open Speedlight_net
open Speedlight_query
module U = Speedlight_update.Update
module Clock = Speedlight_clock.Clock

let port_toward topo ~sw ~peer =
  let found = ref None in
  for p = Topology.ports topo sw - 1 downto 0 do
    match Topology.peer_of topo ~switch:sw ~port:p with
    | Some (Topology.Switch_port (s', _)) when s' = peer -> found := Some p
    | _ -> ()
  done;
  Option.get !found

let hosts_of_leaf topo leaf =
  List.filter
    (fun h -> fst (Topology.host_attachment topo ~host:h) = leaf)
    (List.init (Topology.n_hosts topo) Fun.id)

let run strategy_of =
  let cfg =
    Config.default
    |> Config.with_counter Config.Fib_version
    |> Config.with_seed 7
  in
  let ls = Topology.leaf_spine () in
  let net = Net.create ~cfg ls.Topology.topo in
  let topo = Net.topology net in
  let leaf0, leaf1 =
    match ls.Topology.leaf_switches with
    | a :: b :: _ -> (a, b)
    | _ -> assert false
  in
  let spine0, spine1 =
    match ls.Topology.spine_switches with
    | a :: b :: _ -> (a, b)
    | _ -> assert false
  in
  let h0 = hosts_of_leaf topo leaf0 and h1 = hosts_of_leaf topo leaf1 in
  let pin_all dsts port = List.map (fun d -> (d, port)) dsts in

  (* Initial state, FIB version 1 everywhere: each leaf's cross-leaf
     aggregate pinned to "its" spine. *)
  for s = 0 to Topology.n_switches topo - 1 do
    let sw = Net.switch net s in
    let pins =
      if s = leaf0 then Some (pin_all h1 (port_toward topo ~sw:leaf0 ~peer:spine0))
      else if s = leaf1 then Some (pin_all h0 (port_toward topo ~sw:leaf1 ~peer:spine1))
      else None
    in
    match pins with
    | Some routes ->
        Switch.stage_update sw ~version:1 ~routes ~clear:false;
        ignore (Switch.apply_pending_update sw)
    | None -> Switch.set_fib_version sw 1
  done;

  (* Cross-leaf constant flows keep every probed channel utilized. *)
  let engine = Net.engine net in
  let t_end = Time.ms 32 in
  List.iter
    (fun (srcs, dsts) ->
      List.iteri
        (fun i src ->
          let dst = List.nth dsts (i mod List.length dsts) in
          let fid = Net.fresh_flow_id net in
          let rec go at =
            if at <= t_end then
              ignore
                (Engine.schedule engine ~at (fun () ->
                     Net.send net ~flow_id:fid ~src ~dst ~size:1500 ();
                     go (Time.add at (Time.us 50))))
          in
          go (Time.ms 1))
        srcs)
    [ (h0, h1); (h1, h0) ];
  Net.schedule_global net ~at:(Time.ms 10) (fun () -> Net.auto_exclude_idle net);

  (* Snapshot rounds every 2 ms bracketing the transition. *)
  let sids = ref [] in
  for k = 0 to 7 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 12) (k * Time.ms 2))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error Observer.Pacing_full -> ()
           | Error e -> invalid_arg (Observer.error_to_string e)))
  done;

  (* Compile the swap and launch it at 15 ms; the timed trigger is 20 ms. *)
  let upd = U.create net in
  Net.run_until net (Time.ms 15);
  let target =
    U.Reweight
      {
        pins =
          [
            (leaf0, pin_all h1 (port_toward topo ~sw:leaf0 ~peer:spine1));
            (leaf1, pin_all h0 (port_toward topo ~sw:leaf1 ~peer:spine0));
          ];
      }
  in
  let plan =
    match U.compile ~net ~version:2 target with
    | Ok p -> p
    | Error e -> failwith (U.error_to_string e)
  in
  let trigger = Time.ms 20 in
  let h =
    match U.execute upd plan (strategy_of trigger) with
    | Ok h -> h
    | Error e -> failwith (U.error_to_string e)
  in
  Net.run_until net t_end;

  (* Close the loop: audit the rounds' version vectors for transient
     loops, blackholes and causal violations. *)
  let probe s =
    let port =
      if s = leaf0 || s = leaf1 then
        snd (Topology.host_attachment topo ~host:(List.hd (hosts_of_leaf topo s)))
      else if s = spine0 then port_toward topo ~sw:spine0 ~peer:leaf0
      else port_toward topo ~sw:spine1 ~peer:leaf1
    in
    Unit_id.ingress ~switch:s ~port
  in
  let q = Query.of_net net ~sids:(List.rev !sids) in
  let switches = List.init (Topology.n_switches topo) Fun.id in
  let au =
    U.audit upd h ~probe ~switches ~hosts:(List.init (Topology.n_hosts topo) Fun.id) q
  in
  let ptp_err =
    List.fold_left
      (fun acc s ->
        Float.max acc
          (Float.abs
             (Clock.error_at
                (Control_plane.clock (Net.control_plane net s))
                ~true_time:trigger)))
      0. (U.targets h)
  in
  (h, au, ptp_err)

let report name (h, (au : U.audit), ptp_err) =
  Printf.printf "%-9s  applied=%d/%d  spread=%s  outcome=%s\n" name
    (U.applied_count h)
    (List.length (U.targets h))
    (match U.spread h with
    | Some s -> Printf.sprintf "%.1f us" (Time.to_us s)
    | None -> "n/a")
    (U.outcome_to_string au.U.au_outcome);
  Printf.printf
    "           rounds audited=%d  mixed-version=%d  worst PTP error at \
     trigger=%.3f us\n"
    au.U.au_rounds au.U.au_mixed (ptp_err /. 1e3)

let () =
  print_endline "ECMP re-weight swap, snapshot-audited:";
  report "untimed" (run (fun _ -> U.Immediate));
  report "timed" (run (fun at -> U.Timed { at }));
  print_endline
    "\nThe timed run's spread is bounded by PTP error + scheduling jitter;\n\
     the untimed run pays command latency plus per-switch installation\n\
     variance on the critical path, so its spread is orders of magnitude\n\
     wider — exactly the window the transition detectors watch."

(* Partial deployment (§10): only the leaf (ToR) switches are
   snapshot-enabled; the spines forward snapshot headers untouched. The
   snapshot then covers the participating devices and the logical channels
   between them — leaf-to-leaf through the legacy spines — and causal
   consistency is preserved.

   The analysis side runs entirely on the query engine: rounds come out
   of [Query.of_net] and every claim below is a combinator over them.

   Run with: dune exec examples/partial_deployment.exe *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_query

let () =
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    {
      (Config.default |> Config.with_variant Snapshot_unit.variant_wraparound) with
      (* The spines run no snapshot logic at all. *)
      Config.snapshot_disabled_switches = ls.Topology.spine_switches;
    }
  in
  let net = Net.create ~cfg ls.Topology.topo in
  let engine = Net.engine net in
  Apps.Uniform.run ~engine ~rng:(Net.fresh_rng net)
    ~send:(fun ~src ~dst ~size ~flow_id -> Net.send net ~flow_id ~src ~dst ~size ())
    ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server)
    ~rate_pps:5_000. ~pkt_size:1200 ~until:(Time.ms 300);

  let sids = ref [] in
  List.iter
    (fun at ->
      ignore
        (Engine.schedule engine ~at (fun () ->
             match Net.try_take_snapshot net () with
             | Ok sid -> sids := sid :: !sids
             | Error e ->
                 prerr_endline
                   ("snapshot refused: " ^ Observer.error_to_string e);
                 exit 1)))
    [ Time.ms 60; Time.ms 120; Time.ms 180 ];
  Engine.run_until engine (Time.ms 400);

  let q = Query.of_net net ~sids:(List.rev !sids) in

  (* Every round completed and was labeled consistent — with half the
     switches not participating at all. *)
  Printf.printf "rounds taken=%d complete+consistent=%d\n" (Query.length q)
    (Query.length (Query.consistent_only (Query.complete_only q)));

  (* The cut's footprint: which switches reported, and how many units. A
     full deployment reports all 4 switches and 28 units; here the spines
     contribute nothing. *)
  let reporters =
    Query.group_by (fun (r : Query.row) -> r.Query.uid.Unit_id.switch) q
  in
  Printf.printf "reporting switches: %s (spines %s never report)\n"
    (String.concat ","
       (List.map (fun (s, _) -> string_of_int s) reporters))
    (String.concat ","
       (List.map string_of_int ls.Topology.spine_switches));
  List.iter
    (fun (sid, rows) ->
      Printf.printf "  snapshot %d: %d leaf-unit reports\n" sid
        (List.length rows))
    (Query.by_round q);

  (* Per-leaf traffic totals straight from the cut: mean ingress packet
     count over the three rounds, one line per leaf. *)
  print_endline "\nmean snapshotted ingress counts per leaf:";
  List.iter
    (fun leaf ->
      let v =
        Query.unit_aggregate Query.Agg.Mean
          (Query.select ~switch:leaf ~dir:Unit_id.Ingress q)
      in
      let total =
        List.fold_left
          (fun acc (_, x) -> if Float.is_nan x then acc else acc +. x)
          0. v
      in
      Printf.printf "  leaf s%d: %.0f packets over %d ingress units\n" leaf
        total (List.length v))
    ls.Topology.leaf_switches;

  (* The proof that markers traverse the legacy spines: the leaves'
     uplink ingress units advanced their snapshot IDs even though their
     physical neighbors (the spines) never stamped a packet — the IDs were
     piggybacked end-to-end from the other leaf. *)
  print_endline "\nsnapshot IDs piggybacked across the legacy spines:";
  List.iter
    (fun leaf ->
      List.iter
        (fun p ->
          let u = Net.unit_of net (Unit_id.ingress ~switch:leaf ~port:p) in
          Printf.printf "  leaf s%d uplink p%d ingress: snapshot id %d\n" leaf p
            (Snapshot_unit.current_ghost_sid u))
        (List.assoc leaf ls.Topology.uplink_ports))
    ls.Topology.leaf_switches;
  Printf.printf "  (spines forwarded %d packets without touching a header)\n"
    (List.fold_left
       (fun acc s -> acc + Switch.total_forwarded (Net.switch net s))
       0 ls.Topology.spine_switches)

(* Quickstart: build the paper's leaf-spine testbed, run some traffic, and
   take a synchronized network snapshot of per-port packet counters with
   channel state.

   Run with: dune exec examples/quickstart.exe *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload

let () =
  (* 1. A topology: 2 leaves x 2 spines, 3 servers per leaf (Fig. 8 of the
     paper), with scaled-down 1/4 Gbps links so the packet-level
     simulation stays fast. *)
  let ls =
    Topology.leaf_spine
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in

  (* 2. A deployment: switches with Speedlight data planes, PTP-synced
     control planes, and a snapshot observer. The default config collects
     packet counters with channel state. *)
  let net = Net.create ls.Topology.topo in
  let engine = Net.engine net in

  (* 3. Background traffic: Poisson streams between every host pair. *)
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  Apps.Uniform.run ~engine ~rng:(Net.fresh_rng net) ~send
    ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server)
    ~rate_pps:5_000. ~pkt_size:1500 ~until:(Time.ms 200);

  (* 4. After a warm-up, tell the control planes which channels the
     routing layer never uses (liveness config, paper section 6), then
     take a snapshot. *)
  ignore
    (Engine.schedule engine ~at:(Time.ms 40) (fun () -> Net.auto_exclude_idle net));
  let sid = ref 0 in
  ignore
    (Engine.schedule engine ~at:(Time.ms 50) (fun () ->
         match Net.try_take_snapshot net () with
         | Ok s -> sid := s
         | Error e ->
             prerr_endline ("snapshot refused: " ^ Observer.error_to_string e);
             exit 1));
  Engine.run_until engine (Time.ms 300);

  (* 5. Read the assembled snapshot. *)
  match Net.result net ~sid:!sid with
  | None -> print_endline "snapshot did not complete (should not happen)"
  | Some snap ->
      Printf.printf "snapshot %d: complete=%b consistent=%b, %d unit reports\n"
        snap.Observer.sid snap.Observer.complete snap.Observer.consistent
        (Unit_id.Map.cardinal snap.Observer.reports);
      (match Net.sync_spread net ~sid:!sid with
      | Some spread ->
          Printf.printf "all measurements taken within %s of each other\n"
            (Time.to_string spread)
      | None -> ());

      (* Per-unit values: packet counts at the moment of the cut, plus the
         in-flight packets each channel recorded. *)
      print_endline "\nper-unit pre-snapshot packet counts:";
      Unit_id.Map.iter
        (fun uid (r : Report.t) ->
          Printf.printf "  %-10s count=%-7.0f in-flight=%.0f%s\n"
            (Unit_id.to_string uid)
            (Option.value ~default:nan r.Report.value)
            r.Report.channel
            (if r.Report.consistent then "" else "  (inconsistent)"))
        snap.Observer.reports;

      (* The causal-consistency guarantee, checked on every inter-switch
         wire: packets the sender counted = packets the receiver counted
         + packets recorded as in-flight. *)
      print_endline "\ncausal consistency on every wire:";
      Topology.iter_switch_ports ls.Topology.topo (fun ~switch ~port peer ->
          match peer with
          | Topology.Switch_port (s', p') ->
              let get uid = Unit_id.Map.find_opt uid snap.Observer.reports in
              (match
                 ( get (Unit_id.egress ~switch ~port),
                   get (Unit_id.ingress ~switch:s' ~port:p') )
               with
              | Some e, Some i ->
                  let sent = Option.value ~default:nan e.Report.value in
                  let recv = Option.value ~default:nan i.Report.value in
                  Printf.printf
                    "  s%d/p%d -> s%d/p%d: sent=%-6.0f received=%-6.0f in-flight=%-3.0f  %s\n"
                    switch port s' p' sent recv i.Report.channel
                    (if sent = recv +. i.Report.channel then "OK" else "VIOLATION")
              | _ -> ())
          | Topology.Host_port _ -> ())
